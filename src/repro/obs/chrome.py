"""Chrome/Perfetto ``trace.json`` export for tracer + harness telemetry.

Two trace families share the JSON object format (``traceEvents`` +
``metadata``, loadable in ``chrome://tracing`` / Perfetto):

* **Simulated-time traces** (:func:`tracer_to_chrome`): the convention
  is 1 cycle = 1 µs, so the viewer's microsecond ruler reads as
  cycles. Tracks: one process per event family (kernels, miss paths,
  fabric, instants, metrics) with one thread per socket/link. These
  traces contain *no wall-clock data at all* — serialization is
  canonical (sorted keys, fixed separators), so two runs of the same
  config produce byte-identical files.
* **Wall-clock study traces** (:func:`study_to_chrome`): per-worker
  tracks of task spans from the supervisor's telemetry, in real
  microseconds since the study's first task. Every wall-clock-bearing
  event carries ``cat == "wall"`` and the nondeterministic metadata
  keys are declared in :data:`WALL_CLOCK_METADATA_FIELDS`;
  :func:`strip_wall_clock` zeroes/removes exactly those, leaving the
  deterministic remainder (event counts, simulated totals) for tests
  to compare.

``metadata.trace_schema`` versions the payload shape; bump it when a
track or record shape changes incompatibly.
"""

from __future__ import annotations

import json

#: Payload shape version, recorded in every trace's metadata.
TRACE_SCHEMA = 1

#: Category marking events whose ts/dur come from the wall clock.
WALL_CLOCK_CATEGORY = "wall"

#: Metadata keys that legitimately differ between identical runs.
WALL_CLOCK_METADATA_FIELDS = ("wall_seconds",)

# One Chrome "process" per event family keeps the viewer's track
# grouping stable regardless of which families a run populated.
PID_KERNELS = 1
PID_MISS_PATHS = 2
PID_FABRIC = 3
PID_INSTANTS = 4
PID_METRICS = 5
PID_WORKERS = 10

_PROCESS_NAMES = (
    (PID_KERNELS, "kernels (simulated cycles)"),
    (PID_MISS_PATHS, "miss paths (simulated cycles)"),
    (PID_FABRIC, "fabric transfers (simulated cycles)"),
    (PID_INSTANTS, "instants (simulated cycles)"),
    (PID_METRICS, "metrics (simulated cycles)"),
)

_READ_NAMES = ("read local", "read remote")
_WRITE_NAMES = ("write remote", "write local")


def tracer_to_chrome(tracer, registry=None, link_timelines=None, label=""):
    """Build a Chrome trace payload from a :class:`~repro.obs.tracer.Tracer`.

    ``registry`` (a :class:`~repro.obs.metrics.MetricRegistry`) and
    ``link_timelines`` (the ``RunResult`` Fig-5 ``TimeSeries`` dict)
    each contribute counter tracks when provided. Purely simulated
    time: the payload is a deterministic function of the run.
    """
    events = []
    for pid, name in _PROCESS_NAMES:
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
    seen_tids = set()
    for idx, name, socket_id, t_start, t_end in tracer.kernel_spans:
        _thread_meta(events, seen_tids, PID_KERNELS, socket_id,
                     f"socket {socket_id}")
        events.append(
            {"ph": "X", "cat": "kernel", "name": f"k{idx}:{name}",
             "pid": PID_KERNELS, "tid": socket_id, "ts": t_start,
             "dur": t_end - t_start, "args": {"kernel": idx}}
        )
    for socket_id, line, cls, home_id, t_start, t_end, hops in tracer.read_spans:
        _thread_meta(events, seen_tids, PID_MISS_PATHS, socket_id,
                     f"socket {socket_id}")
        events.append(
            {"ph": "X", "cat": "read", "name": _READ_NAMES[cls],
             "pid": PID_MISS_PATHS, "tid": socket_id, "ts": t_start,
             "dur": t_end - t_start,
             "args": {"line": line, "home": home_id,
                      "hops": [[tag, cycle] for tag, cycle in hops]}}
        )
    for socket_id, line, is_local, home_id, t_start, t_end in tracer.write_spans:
        _thread_meta(events, seen_tids, PID_MISS_PATHS, socket_id,
                     f"socket {socket_id}")
        events.append(
            {"ph": "X", "cat": "write", "name": _WRITE_NAMES[is_local],
             "pid": PID_MISS_PATHS, "tid": socket_id, "ts": t_start,
             "dur": t_end - t_start,
             "args": {"line": line, "home": home_id}}
        )
    for src, dst, nbytes, t_start, t_end, hops in tracer.fabric_sends:
        _thread_meta(events, seen_tids, PID_FABRIC, src, f"socket {src} out")
        events.append(
            {"ph": "X", "cat": "fabric", "name": f"{src}->{dst}",
             "pid": PID_FABRIC, "tid": src, "ts": t_start,
             "dur": t_end - t_start,
             "args": {"bytes": nbytes, "hops": hops}}
        )
    _thread_meta(events, seen_tids, PID_INSTANTS, 0, "placement + lanes")
    for page, old, new, cycle in tracer.migrations:
        events.append(
            {"ph": "i", "cat": "migration", "name": f"re-home p{page}",
             "pid": PID_INSTANTS, "tid": 0, "ts": cycle, "s": "g",
             "args": {"page": page, "from": old, "to": new}}
        )
    for link_label, kind, cycle in tracer.lane_events:
        events.append(
            {"ph": "i", "cat": "lane", "name": f"{link_label} {kind}",
             "pid": PID_INSTANTS, "tid": 0, "ts": cycle, "s": "t",
             "args": {"link": link_label}}
        )
    if registry is not None:
        for name, series in registry.series.items():
            _counter_track(events, name, series.times, series.values)
    if link_timelines:
        for name, series in link_timelines.items():
            _counter_track(events, name, series.times, series.values)
    metadata = {
        "trace_schema": TRACE_SCHEMA,
        "clock": "simulated-cycles-as-us",
        "label": label,
        "dropped": dict(tracer.dropped),
        "bursts": {
            "n_bursts": tracer.n_bursts,
            "n_l1_hits": tracer.n_l1_hits,
            "n_async_issued": tracer.n_async_issued,
        },
    }
    if registry is not None and registry.counters:
        metadata["counters"] = dict(registry.counters)
    return {"traceEvents": events, "metadata": metadata}


def _thread_meta(events, seen, pid, tid, name) -> None:
    if (pid, tid) not in seen:
        seen.add((pid, tid))
        events.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
             "args": {"name": name}}
        )


def _counter_track(events, name, times, values) -> None:
    for cycle, value in zip(times, values):
        events.append(
            {"ph": "C", "cat": "metric", "name": name, "pid": PID_METRICS,
             "tid": 0, "ts": cycle, "args": {"value": value}}
        )


def study_to_chrome(telemetry):
    """Build a wall-clock Chrome trace from supervisor study telemetry.

    ``telemetry`` is the ``FailureReport.telemetry`` dict: per-worker
    task spans (monotonic-clock seconds, comparable across processes on
    Linux) plus aggregated tallies. Worker-to-task assignment and all
    timestamps are scheduling-dependent — every timed event carries
    ``cat == "wall"`` so :func:`strip_wall_clock` can remove the
    nondeterminism; the simulated totals in the metadata are exact.
    """
    events = [
        {"ph": "M", "name": "process_name", "pid": PID_WORKERS, "tid": 0,
         "args": {"name": "harness workers (wall clock)"}}
    ]
    workers = telemetry.get("workers", {})
    starts = [
        task["t_start"]
        for record in workers.values()
        for task in record.get("tasks", ())
    ]
    base = min(starts) if starts else 0.0
    for tid, worker_id in enumerate(sorted(workers)):
        record = workers[worker_id]
        events.append(
            {"ph": "M", "name": "thread_name", "pid": PID_WORKERS,
             "tid": tid, "args": {"name": f"worker {worker_id}"}}
        )
        for task in record.get("tasks", ()):
            t_start = task["t_start"]
            t_end = task["t_end"]
            events.append(
                {"ph": "X", "cat": WALL_CLOCK_CATEGORY, "name": task["key"],
                 "pid": PID_WORKERS, "tid": tid,
                 "ts": int((t_start - base) * 1e6),
                 "dur": int((t_end - t_start) * 1e6),
                 "args": {"runs": task["runs"], "events": task["events"],
                          "cycles": task["cycles"]}}
            )
    totals = dict(telemetry.get("totals", {}))
    wall = totals.pop("wall_seconds", None)
    metadata = {
        "trace_schema": TRACE_SCHEMA,
        "clock": "wall-us",
        "totals": totals,
    }
    if wall is not None:
        metadata["wall_seconds"] = wall
    return {"traceEvents": events, "metadata": metadata}


def strip_wall_clock(payload):
    """Copy of ``payload`` with every declared wall-clock field removed.

    Events in :data:`WALL_CLOCK_CATEGORY` lose their ``ts``/``dur``
    (and worker-thread assignment via ``tid`` — pool scheduling is
    nondeterministic); metadata drops the keys declared in
    :data:`WALL_CLOCK_METADATA_FIELDS`. What remains must be identical
    across runs of the same study.
    """
    events = []
    for event in payload.get("traceEvents", ()):
        if event.get("cat") == WALL_CLOCK_CATEGORY:
            event = {
                key: value
                for key, value in event.items()
                if key not in ("ts", "dur", "tid")
            }
        events.append(event)
    metadata = {
        key: value
        for key, value in payload.get("metadata", {}).items()
        if key not in WALL_CLOCK_METADATA_FIELDS
    }
    # Wall-clock task spans lose their worker thread, so ordering by
    # (name, args) gives a canonical event sequence to compare.
    events.sort(key=lambda e: json.dumps(e, sort_keys=True))
    return {"traceEvents": events, "metadata": metadata}


_VALID_PHASES = frozenset("XiCM")


def validate_chrome_trace(payload) -> None:
    """Raise ``ValueError`` unless ``payload`` is a loadable trace.

    Structural checks mirroring what the Chrome/Perfetto importer
    needs: the JSON-object form with a ``traceEvents`` list, known
    phase codes, integer pids/tids, and complete ``X``/``i``/``C``
    records. Also pins ``metadata.trace_schema`` to the version this
    module writes.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload missing traceEvents list")
    metadata = payload.get("metadata")
    if not isinstance(metadata, dict):
        raise ValueError("trace payload missing metadata object")
    if metadata.get("trace_schema") != TRACE_SCHEMA:
        raise ValueError(
            f"trace_schema {metadata.get('trace_schema')!r} != {TRACE_SCHEMA}"
        )
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"{where}: missing integer pid")
        if phase == "M":
            continue
        if not isinstance(event.get("tid"), int) and "tid" in event:
            raise ValueError(f"{where}: non-integer tid")
        if "ts" in event and not isinstance(event["ts"], (int, float)):
            raise ValueError(f"{where}: non-numeric ts")
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(f"{where}: X event needs ts and dur")
            if event["dur"] < 0:
                raise ValueError(f"{where}: negative duration")
        elif phase == "i":
            if "ts" not in event or event.get("s") not in ("t", "p", "g"):
                raise ValueError(f"{where}: i event needs ts and scope")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"{where}: C event needs value args")
            for value in args.values():
                if not isinstance(value, (int, float)):
                    raise ValueError(f"{where}: non-numeric counter value")


def canonical_json(payload) -> str:
    """Canonical serialization: byte-stable for identical payloads."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(payload, path) -> None:
    """Validate and write ``payload`` canonically to ``path``."""
    validate_chrome_trace(payload)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(payload))
        handle.write("\n")
