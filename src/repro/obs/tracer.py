"""The Tracer: simulated-time spans and instants from the hook sites.

One :class:`Tracer` instance collects everything a traced run emits.
Every handler reads *simulated* time (``engine.now`` / stage-quoted
completion cycles) — never the wall clock — so the recorded event
stream is a pure function of the configuration and two runs of the
same config produce identical traces (pinned by ``tests/test_obs.py``).

Event kinds and their record shapes (plain tuples, exported via
:meth:`Tracer.to_dict` / :mod:`repro.obs.chrome`):

==============  ======================================================
kernel_spans    ``(kernel_idx, name, socket_id, t_start, t_end)`` —
                one per populated socket per kernel (launch to
                sub-kernel completion barrier).
read_spans      ``(socket_id, line, cls, home_id, t_start, t_end,
                hops)`` — one per ``ReadPath`` walk (L1 miss to L1
                refill); ``hops`` is a tuple of ``(tag, cycle)``
                waypoints (``serve`` at the home socket, ``reply``
                back at the requester).
write_spans     ``(socket_id, line, is_local, home_id, t_start,
                t_end)`` — one per ``WritePath`` walk.
migrations      ``(page, old_home, new_home, cycle)`` instants from
                dynamic placement re-homes.
fabric_sends    ``(src, dst, nbytes, t_start, t_end, hops)`` — one
                per fabric packet (crossbar hops = 2; multi-hop
                fabrics report their routed hop count).
lane_events     ``(link_label, kind, cycle)`` — ``turn_egress`` /
                ``turn_ingress`` lane reversals and kernel-launch
                ``reset`` events.
==============  ======================================================

Per-kind event lists are capped (``max_events_per_kind``) with exact
``dropped`` counts, so a trace of a long run stays bounded while the
truncation is visible in the exported metadata rather than silent.
Burst-level activity (per-SM issue counts) is too high-volume for
per-event records; :meth:`on_burst` folds it into running counters
that the metric registry and trace metadata report instead.
"""

from __future__ import annotations


class Tracer:
    """Collects spans/instants from enabled hook sites (simulated time)."""

    def __init__(self, max_events_per_kind: int = 50000) -> None:
        self.max_events_per_kind = max_events_per_kind
        self.kernel_spans: list[tuple] = []
        self.read_spans: list[tuple] = []
        self.write_spans: list[tuple] = []
        self.migrations: list[tuple] = []
        self.fabric_sends: list[tuple] = []
        self.lane_events: list[tuple] = []
        #: exact per-kind counts of events past the cap (empty = none).
        self.dropped: dict[str, int] = {}
        # Burst-level aggregates (too hot for per-event records).
        self.n_bursts = 0
        self.n_l1_hits = 0
        self.n_async_issued = 0
        # Open-span state keyed by walker identity; walkers are pooled
        # per socket so an id is reused only after its span closed.
        self._open_kernel: tuple | None = None
        self._open_reads: dict[int, tuple] = {}
        self._open_writes: dict[int, int] = {}

    # ------------------------------------------------------------------
    # bounded append
    # ------------------------------------------------------------------
    def _append(self, events: list, kind: str, item: tuple) -> None:
        if len(events) < self.max_events_per_kind:
            events.append(item)
        else:
            self.dropped[kind] = self.dropped.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # kernel lifecycle (runtime/launcher.py)
    # ------------------------------------------------------------------
    def on_kernel_launch(self, idx, name, now, populated) -> None:
        """A kernel launched; ``populated`` lists its (socket, block)s."""
        self._open_kernel = (idx, name, now)

    def on_subkernel_done(self, socket_id, now) -> None:
        """One socket finished its sub-kernel: close its kernel span."""
        if self._open_kernel is not None:
            idx, name, t_start = self._open_kernel
            self._append(
                self.kernel_spans,
                "kernel",
                (idx, name, socket_id, t_start, now),
            )

    # ------------------------------------------------------------------
    # miss-path walkers (sim/path.py)
    # ------------------------------------------------------------------
    def on_read_begin(self, walker) -> None:
        """A ``ReadPath`` entered its L2 stage."""
        self._open_reads[id(walker)] = (walker.engine.now, [])

    def on_read_hop(self, walker, tag) -> None:
        """A waypoint (``serve`` / ``reply``) on an open read walk."""
        entry = self._open_reads.get(id(walker))
        if entry is not None:
            entry[1].append((tag, walker.engine.now))

    def on_read_end(self, walker) -> None:
        """The walk completed (L1s refilled); close the span."""
        entry = self._open_reads.pop(id(walker), None)
        if entry is None:
            return
        t_start, hops = entry
        self._append(
            self.read_spans,
            "read",
            (
                walker.socket_id,
                walker.line,
                walker.cls,
                walker.home_id,
                t_start,
                walker.engine.now,
                tuple(hops),
            ),
        )

    def on_write_begin(self, walker) -> None:
        """A ``WritePath`` entered its L2 stage."""
        self._open_writes[id(walker)] = walker.engine.now

    def on_write_end(self, walker, t_end) -> None:
        """The write was absorbed/acked at ``t_end``; close the span."""
        t_start = self._open_writes.pop(id(walker), None)
        if t_start is None:
            return
        self._append(
            self.write_spans,
            "write",
            (
                walker.socket_id,
                walker.line,
                1 if walker.is_local else 0,
                walker.home_id,
                t_start,
                t_end,
            ),
        )

    # ------------------------------------------------------------------
    # burst aggregates (gpu/socket.py)
    # ------------------------------------------------------------------
    def on_burst(self, socket, sm_index, now, n_hits, n_async) -> None:
        """Fold one SM issue burst into the running counters."""
        self.n_bursts += 1
        self.n_l1_hits += n_hits
        self.n_async_issued += n_async

    # ------------------------------------------------------------------
    # placement / fabric / lanes
    # ------------------------------------------------------------------
    def on_page_rehome(self, page, old, new, engine) -> None:
        """A dynamic placement policy re-homed ``page`` old -> new."""
        now = engine.now if engine is not None else 0
        self._append(self.migrations, "migration", (page, old, new, now))

    def on_fabric_send(self, src, dst, nbytes, t_start, t_end, hops) -> None:
        """One fabric packet admitted at ``t_start``, arriving ``t_end``."""
        self._append(
            self.fabric_sends,
            "fabric",
            (src, dst, nbytes, t_start, t_end, hops),
        )

    def on_lane_turn(self, label, toward, now) -> None:
        """The balancer reversed a lane of ``label`` toward a direction."""
        self._append(self.lane_events, "lane", (label, "turn_" + toward, now))

    def on_lane_reset(self, label, now) -> None:
        """Kernel-launch symmetric reset of ``label``."""
        self._append(self.lane_events, "lane", (label, "reset", now))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data view of everything recorded (JSON-serializable)."""
        return {
            "kernel_spans": [list(span) for span in self.kernel_spans],
            "read_spans": [
                [*span[:6], [list(hop) for hop in span[6]]]
                for span in self.read_spans
            ],
            "write_spans": [list(span) for span in self.write_spans],
            "migrations": [list(item) for item in self.migrations],
            "fabric_sends": [list(item) for item in self.fabric_sends],
            "lane_events": [list(item) for item in self.lane_events],
            "dropped": dict(self.dropped),
            "bursts": {
                "n_bursts": self.n_bursts,
                "n_l1_hits": self.n_l1_hits,
                "n_async_issued": self.n_async_issued,
            },
        }
