"""Prebound no-op hook points: zero-overhead-when-off tracing plumbing.

The problem: the simulator's hot stages (``ReadPath`` / ``WritePath``
bodies, ``access_burst``) execute millions of times per run, and the
usual tracing idioms — ``if self.tracer: self.tracer.on_x(...)`` or
``self.obs.hooks.read_begin(...)`` — cost a branch or an attribute
chain *per event even when tracing is off*. ``repro lint``'s hot-path
rules exist precisely to keep such work out of stage bodies.

The pattern used instead (enforced by the ``obs-hook-discipline``
rule): every instrumented module binds a module-level global to the
shared :data:`NOOP` and declares the site here::

    from repro.obs.hooks import NOOP, register

    _obs_read_begin = NOOP
    register(__name__, "_obs_read_begin", "read_begin")

Call sites are then bare global calls — ``_obs_read_begin(self)`` — a
single ``LOAD_GLOBAL`` plus a no-op call when disabled, with no
conditional for the lint rules to flag. :func:`enable` rebinds every
registered site to the matching ``on_<event>`` method of a tracer;
:func:`disable` restores :data:`NOOP`. Tracing state is process-global
(matching the module-global bind points), so runs are traced one at a
time under a ``try/finally`` — exactly how the harness drives it.
"""

from __future__ import annotations

import sys


def NOOP(*args) -> None:
    """Shared do-nothing handler every hook site binds when disabled."""
    return None


#: Registered (module name, global attr, event name) bind sites.
_SITES: list[tuple[str, str, str]] = []

#: The tracer currently bound into the hook sites, or None.
_bound = None


def register(module_name: str, attr: str, event: str) -> None:
    """Declare one hook site: ``module.attr`` fires ``on_<event>``.

    Called at import time by every instrumented module, immediately
    after binding ``attr = NOOP``. Registration is idempotent per
    (module, attr) pair so a re-imported module does not duplicate its
    sites.
    """
    for mod, existing, _ in _SITES:
        if mod == module_name and existing == attr:
            return
    _SITES.append((module_name, attr, event))


def sites() -> tuple[tuple[str, str, str], ...]:
    """All registered (module, attr, event) sites, registration order."""
    return tuple(_SITES)


def is_enabled() -> bool:
    """True while a tracer is bound into the hook sites."""
    return _bound is not None


def enable(tracer) -> None:
    """Swap every registered site from :data:`NOOP` to ``tracer``.

    Each site's global becomes ``tracer.on_<event>`` (the handler must
    exist — a missing handler is a programming error, raised eagerly so
    a typo'd event name cannot silently trace nothing). Raises
    ``RuntimeError`` when a tracer is already bound: nested tracing has
    no meaning for module-global bind points.
    """
    global _bound
    if _bound is not None:
        raise RuntimeError(
            "obs hooks already enabled; disable() the current tracer first"
        )
    for module_name, attr, event in _SITES:
        handler = getattr(tracer, "on_" + event)
        setattr(sys.modules[module_name], attr, handler)
    _bound = tracer


def disable() -> None:
    """Restore every registered site to :data:`NOOP` (idempotent)."""
    global _bound
    for module_name, attr, _event in _SITES:
        setattr(sys.modules[module_name], attr, NOOP)
    _bound = None
