"""Unified observability layer: deterministic tracing and metrics.

Three pieces (see DESIGN.md, "Observability contract"):

* :mod:`repro.obs.hooks` — the prebound no-op hook-point registry.
  Instrumented modules bind ``_obs_*`` module globals to the shared
  :data:`~repro.obs.hooks.NOOP` and declare them with
  :func:`~repro.obs.hooks.register`; enabling a tracer rebinds every
  site to a real handler, disabling restores the no-op. The disabled
  path is a bare global call — no attribute chain, no conditional —
  which is what the ``obs-hook-discipline`` lint rule enforces inside
  hot functions.
* :mod:`repro.obs.tracer` — :class:`~repro.obs.tracer.Tracer`, the
  handler set: spans and instants recorded purely in *simulated time*
  (kernel spans per socket, miss-path walker spans with hop
  breakdowns, migration instants, fabric transfers, lane events).
* :mod:`repro.obs.metrics` — :class:`~repro.obs.metrics.MetricRegistry`,
  named gauges/counters with a periodic simulated-time sampler
  generalizing the Fig-5 ``TimeSeries`` machinery.

:mod:`repro.obs.chrome` exports both to Chrome/Perfetto ``trace.json``.
Simulated-time traces contain no wall-clock data at all, so two runs of
the same config serialize byte-identically.
"""

from repro.obs.hooks import NOOP, disable, enable, is_enabled, register
from repro.obs.metrics import MetricRegistry
from repro.obs.tracer import Tracer

__all__ = [
    "NOOP",
    "MetricRegistry",
    "Tracer",
    "disable",
    "enable",
    "is_enabled",
    "register",
]
