"""Rule ``determinism``: sources of run-to-run nondeterminism.

The determinism contract (DESIGN.md) promises bit-identical results for
a given config + workload: the goldens, the parallel==serial smoke, and
the disk cache all depend on it. This checker flags the four ways a
change has historically threatened (or could threaten) that contract:

1. **Unseeded RNGs** — ``random.Random()`` with no seed argument, and
   any use of the module-level ``random.*`` functions (they share global
   state across call sites and processes; the workload layer's seeded
   per-kernel ``random.Random(seed)`` instances are the only sanctioned
   randomness).
2. **Wall-clock reads in sim-state modules** — ``time.time()`` /
   ``perf_counter()`` / ``monotonic()`` inside the simulator core
   (``sim``, ``gpu``, ``memory``, ``interconnect``, ``topology``,
   ``locality``, ``runtime``, ``core``). Harness/scripts wall-time
   measurement is fine; a wall-clock value reaching engine scheduling
   is not. Legit in-core measurement (e.g. the events/sec tally) opts
   out per line.
3. **Builtin ``hash()``** — salted per process for str/bytes under
   PYTHONHASHSEED; any hash-derived value that reaches sim state or an
   export breaks cross-process reproducibility.
4. **Unordered ``set`` iteration** in sim-state modules — iterating a
   set whose element order feeds an order-sensitive sink (scheduling,
   stats, routing) reproduces only by accident. Sets built from ints
   iterate deterministically *per process* but their order is an
   implementation detail; wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, LintChecker

#: Module-path segments that mark simulator-core (sim-state) code.
SIM_STATE_PARTS = frozenset({
    "sim", "gpu", "memory", "interconnect", "topology", "locality",
    "runtime", "core",
})

#: Wall-clock functions of the ``time`` module.
_CLOCK_FNS = frozenset({
    "time", "perf_counter", "monotonic", "process_time", "time_ns",
    "perf_counter_ns", "monotonic_ns",
})

#: Module-level ``random`` functions that mutate/read the global RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "seed",
})

#: Call wrappers that make iteration order irrelevant.
_ORDER_INSENSITIVE_WRAPPERS = frozenset({
    "sorted", "sum", "len", "min", "max", "any", "all", "set",
    "frozenset",
})


def _is_sim_state_path(relpath: str) -> bool:
    parts = relpath.replace("\\", "/").split("/")
    return bool(SIM_STATE_PARTS.intersection(parts[:-1]))


def _call_name(node: ast.Call) -> tuple[str | None, str | None]:
    """(module_or_None, function) for ``m.f(...)`` / ``f(...)`` calls."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, None


class DeterminismChecker(LintChecker):
    """Flag statically-detectable determinism hazards."""

    rule = "determinism"
    description = (
        "unseeded/global RNGs, wall-clock reads or unordered set "
        "iteration in sim-state modules, builtin hash()"
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._sim_state = _is_sim_state_path(ctx.relpath)
        #: names bound from ``from random import x`` / ``from time import x``
        self._random_aliases: dict[str, str] = {}
        self._clock_aliases: dict[str, str] = {}
        #: local names known to hold a bare set in the current file.
        self._set_names: set[str] = set()

    def on_node(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.ImportFrom):
            self._track_import(node, ctx)
        elif isinstance(node, ast.Call):
            self._check_call(node, ctx)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._track_set_binding(node)
        elif isinstance(node, ast.For):
            self._check_iteration(node.iter, node, ctx)
        elif isinstance(node, ast.comprehension):
            self._check_iteration(node.iter, node.iter, ctx)

    # ------------------------------------------------------------------
    # RNG / clock / hash
    # ------------------------------------------------------------------
    def _track_import(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.module == "random":
            for alias in node.names:
                name = alias.asname or alias.name
                if alias.name in _GLOBAL_RANDOM_FNS:
                    self._random_aliases[name] = alias.name
                    ctx.report(
                        self.rule, node,
                        f"'from random import {alias.name}' binds the "
                        "module-level RNG (shared global state); use a "
                        "seeded random.Random instance",
                    )
        elif node.module == "time" and self._sim_state:
            for alias in node.names:
                if alias.name in _CLOCK_FNS:
                    self._clock_aliases[alias.asname or alias.name] = alias.name

    def _check_call(self, node: ast.Call, ctx: FileContext) -> None:
        mod, fn = _call_name(node)
        if fn is None:
            return
        if mod == "random" and fn == "Random":
            if not node.args and not node.keywords:
                ctx.report(
                    self.rule, node,
                    "unseeded random.Random() — results differ per "
                    "process; pass an explicit seed",
                )
        elif (mod == "random" and fn in _GLOBAL_RANDOM_FNS) or (
            mod is None and fn in self._random_aliases
        ):
            target = fn if mod else self._random_aliases[fn]
            ctx.report(
                self.rule, node,
                f"module-level random.{target}() uses the shared global "
                "RNG; use a seeded random.Random instance",
            )
        elif self._sim_state and (
            (mod == "time" and fn in _CLOCK_FNS)
            or (mod is None and fn in self._clock_aliases)
        ):
            target = fn if mod else self._clock_aliases[fn]
            ctx.report(
                self.rule, node,
                f"wall-clock time.{target}() in a sim-state module — "
                "simulated behaviour must be a function of config + "
                "workload only",
            )
        elif mod is None and fn == "hash" and node.args:
            ctx.report(
                self.rule, node,
                "builtin hash() is salted per process for str/bytes "
                "(PYTHONHASHSEED); use hashlib or a stable key instead",
            )

    # ------------------------------------------------------------------
    # set iteration
    # ------------------------------------------------------------------
    def _track_set_binding(self, node: ast.Assign | ast.AnnAssign) -> None:
        value = node.value
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
            ann = node.annotation
            # `x: set[...] = ...` annotations mark set names even when
            # the initializer is opaque.
            if _annotation_is_set(ann):
                for target in targets:
                    if isinstance(target, ast.Name):
                        self._set_names.add(target.id)
        if value is not None and _is_set_expr(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    self._set_names.add(target.id)
        elif value is not None:
            # A rebind to a non-set expression clears the mark.
            for target in targets:
                if isinstance(target, ast.Name):
                    self._set_names.discard(target.id)

    def _check_iteration(self, iterable: ast.expr, where: ast.AST,
                         ctx: FileContext) -> None:
        if not self._sim_state:
            return
        if _is_set_expr(iterable) or (
            isinstance(iterable, ast.Name) and iterable.id in self._set_names
        ):
            ctx.report(
                self.rule, where,
                "iteration over a set has no contractual order; wrap in "
                "sorted(...) before it feeds sim state or output",
            )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra keeps set-ness when either side is set-like.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _annotation_is_set(ann: ast.expr | None) -> bool:
    if ann is None:
        return False
    if isinstance(ann, ast.Name):
        return ann.id in ("set", "frozenset")
    if isinstance(ann, ast.Subscript):
        return _annotation_is_set(ann.value)
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value.strip()
        return text.startswith("set[") or text.startswith("frozenset[") or text in (
            "set", "frozenset"
        )
    return False
