"""Rule ``fingerprint-complete``: config identity must cover every field.

PR 1 existed because the experiment memo key was a *hand-picked* tuple
of config fields: configs differing only in the unlisted fields
(``noc_bandwidth``, ``dram_latency``, L1 geometry, ...) silently aliased
to the same cache entry and re-used each other's results. The fix was
``config_fingerprint``'s introspective walk over ``dataclasses.fields``.
This checker makes that bug class un-shippable either way the function
is written:

* **Generic walk** — if the fingerprint function (or a helper it calls
  in the same module) iterates ``dataclasses.fields(...)``, every field
  is structurally covered; the checker then only flags *name-based
  filtering* (comparing ``f.name`` against string constants), because a
  field excluded from identity is exactly the aliasing hazard.
* **Explicit key** — if the function builds the key from attribute
  accesses (the PR-1 shape), the checker collects every attribute name
  read anywhere in the function's call graph and reports each reachable
  dataclass field that is never read. "Reachable" is the transitive
  closure of dataclass-typed field annotations starting at the root
  config class, with string annotations (``"TopologySpec | None"``)
  resolved by identifier.

The root class and fingerprint function are located by name anywhere in
the linted tree (``SystemConfig`` / ``config_fingerprint``), so the
checker works unchanged on fixture projects — the regression fixture in
``tests/test_lint.py`` re-creates the PR-1 bug and must keep failing.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Finding, LintChecker, Project

#: Name of the root config dataclass whose field tree defines identity.
ROOT_CLASS = "SystemConfig"
#: Name of the fingerprint function whose coverage is verified.
FINGERPRINT_FN = "config_fingerprint"

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _dataclass_defs(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Module-level classes decorated with ``@dataclass``/``@dataclass(...)``."""
    out: dict[str, ast.ClassDef] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = (
                target.attr if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else None
            )
            if name == "dataclass":
                out[node.name] = node
                break
    return out


def _class_fields(node: ast.ClassDef) -> list[tuple[str, str]]:
    """(field name, annotation source) pairs of one dataclass body."""
    fields: list[tuple[str, str]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = ast.unparse(stmt.annotation)
            if "ClassVar" in ann:
                continue
            fields.append((stmt.target.id, ann))
    return fields


def _annotation_idents(ann: str) -> set[str]:
    """All identifiers in an annotation (string forms included)."""
    return set(_IDENT_RE.findall(ann.replace('"', " ").replace("'", " ")))


class FingerprintChecker(LintChecker):
    """Verify the config fingerprint covers the whole dataclass tree."""

    rule = "fingerprint-complete"
    description = (
        "every dataclass field reachable from SystemConfig participates "
        "in config_fingerprint (the PR-1 memo-aliasing bug class)"
    )

    root_class = ROOT_CLASS
    fingerprint_fn = FINGERPRINT_FN

    def finalize(self, project: Project) -> list[Finding]:
        ctx = project.find_module(defines=(self.fingerprint_fn,))
        if ctx is None:
            # Nothing to check in this tree (e.g. linting scripts/ only).
            return []
        fn_def, helpers = self._call_graph(ctx.tree)
        if fn_def is None:
            return []
        findings: list[Finding] = []
        reachable = self._reachable_fields(project)
        if not reachable:
            findings.append(Finding(
                rule=self.rule,
                path=ctx.relpath,
                line=fn_def.lineno,
                message=(
                    f"found {self.fingerprint_fn}() but no "
                    f"{self.root_class} dataclass to verify it against"
                ),
                symbol=self.fingerprint_fn,
            ))
            return self._suppressed(findings, ctx)
        bodies = [fn_def] + helpers
        if self._has_generic_walk(bodies):
            for name, line in self._name_filters(bodies):
                findings.append(Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=line,
                    message=(
                        f"field {name!r} is filtered out of the "
                        "fingerprint by name — excluded fields alias "
                        "configs that differ only there"
                    ),
                    symbol=self.fingerprint_fn,
                ))
            return self._suppressed(findings, ctx)
        read = self._attributes_read(bodies)
        for cls_name, field_name, line_hint in reachable:
            if field_name not in read:
                findings.append(Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=fn_def.lineno,
                    message=(
                        f"{cls_name}.{field_name} is never read by "
                        f"{self.fingerprint_fn}() — configs differing "
                        "only in that field get the same identity "
                        "(the PR-1 memo-aliasing bug)"
                    ),
                    symbol=self.fingerprint_fn,
                ))
        return self._suppressed(findings, ctx)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _suppressed(self, findings: list[Finding], ctx) -> list[Finding]:
        """Apply the reporting module's per-line suppressions."""
        out = []
        for finding in findings:
            allowed = ctx.suppressions.get(finding.line, frozenset())
            if self.rule in allowed or "all" in allowed:
                continue
            out.append(finding)
        return out

    def _call_graph(
        self, tree: ast.Module
    ) -> tuple[ast.FunctionDef | None, list[ast.FunctionDef]]:
        """The fingerprint function plus same-module helpers it calls."""
        module_fns = {
            node.name: node
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }
        root = module_fns.get(self.fingerprint_fn)
        if root is None:
            return None, []
        seen = {root.name}
        frontier = [root]
        helpers: list[ast.FunctionDef] = []
        while frontier:
            fn = frontier.pop()
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    callee = module_fns.get(node.func.id)
                    if callee is not None and callee.name not in seen:
                        seen.add(callee.name)
                        helpers.append(callee)
                        frontier.append(callee)
        return root, helpers

    def _reachable_fields(self, project: Project) -> list[tuple[str, str, int]]:
        """(class, field, lineno) for the root class's transitive fields."""
        defs: dict[str, ast.ClassDef] = {}
        for ctx in project.files.values():
            defs.update(_dataclass_defs(ctx.tree))
        if self.root_class not in defs:
            return []
        out: list[tuple[str, str, int]] = []
        seen = {self.root_class}
        frontier = [self.root_class]
        while frontier:
            cls = defs[frontier.pop()]
            for field_name, ann in _class_fields(cls):
                out.append((cls.name, field_name, cls.lineno))
                for ident in _annotation_idents(ann):
                    if ident in defs and ident not in seen:
                        seen.add(ident)
                        frontier.append(ident)
        return out

    def _has_generic_walk(self, bodies: list[ast.FunctionDef]) -> bool:
        """Does any body iterate ``dataclasses.fields(...)``?"""
        for fn in bodies:
            for node in ast.walk(fn):
                iters: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, ast.comprehension):
                    iters.append(node.iter)
                for it in iters:
                    if isinstance(it, ast.Call):
                        f = it.func
                        name = (
                            f.attr if isinstance(f, ast.Attribute)
                            else f.id if isinstance(f, ast.Name) else None
                        )
                        if name == "fields":
                            return True
        return False

    def _name_filters(self, bodies: list[ast.FunctionDef]) -> list[tuple[str, int]]:
        """String constants a ``.name`` attribute is compared against."""
        out: list[tuple[str, int]] = []
        for fn in bodies:
            for node in ast.walk(fn):
                if not isinstance(node, ast.Compare):
                    continue
                sides = [node.left] + list(node.comparators)
                has_name_attr = any(
                    isinstance(s, ast.Attribute) and s.attr == "name"
                    for s in sides
                )
                if not has_name_attr:
                    continue
                for side in sides:
                    for const in ast.walk(side):
                        if isinstance(const, ast.Constant) and isinstance(
                            const.value, str
                        ):
                            out.append((const.value, node.lineno))
        return out

    def _attributes_read(self, bodies: list[ast.FunctionDef]) -> set[str]:
        """Every attribute name loaded anywhere in the call graph."""
        read: set[str] = set()
        for fn in bodies:
            for node in ast.walk(fn):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    read.add(node.attr)
                elif isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    # getattr(obj, "field") / f.name == "field" string
                    # forms count as reads too.
                    read.add(node.value)
        return read
