"""The contract checkers behind ``repro lint``.

Each module contributes one :class:`~repro.analysis.core.LintChecker`
subclass; :func:`default_checkers` builds the standard set the CLI and
CI run. Rules (see DESIGN.md "Static contracts" for the catalogue):

* ``determinism`` — unseeded/global RNGs, wall-clock reads in sim-state
  modules, builtin ``hash()``, unordered ``set`` iteration;
* ``fingerprint-complete`` — every ``SystemConfig``-reachable dataclass
  field participates in ``config_fingerprint``;
* ``hot-path-alloc`` / ``hot-path-attr`` — allocation and attribute
  discipline inside the declared hot functions;
* ``obs-hook-discipline`` — observability hooks in hot functions use
  the prebound module-level NOOP callable pattern (no attribute-chain
  lookups or tracer conditionals on the disabled path);
* ``export-roundtrip`` — ``RunResult`` fields survive the JSON
  round-trip in ``metrics/export.py`` (or are explicitly omitted);
* ``registry-hygiene`` — registered policies have docstrings and a test
  referencing their kind string;
* ``snapshot-complete`` — every mutable attribute of a class defining
  ``snapshot_state`` is captured, restored, or ``_SNAPSHOT_EXEMPT``.
"""

from __future__ import annotations

from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.export_roundtrip import ExportRoundTripChecker
from repro.analysis.checkers.fingerprint import FingerprintChecker
from repro.analysis.checkers.hotpath import HotPathChecker
from repro.analysis.checkers.obs_hooks import ObsHookDisciplineChecker
from repro.analysis.checkers.registry_hygiene import RegistryHygieneChecker
from repro.analysis.checkers.snapshot import SnapshotCompleteChecker
from repro.analysis.core import LintChecker


def default_checkers(rules: tuple[str, ...] | None = None) -> list[LintChecker]:
    """The standard checker set, optionally filtered to ``rules``.

    A rule name selects every checker that owns it (the hot-path checker
    owns two rules; naming either selects it).
    """
    checkers: list[LintChecker] = [
        DeterminismChecker(),
        FingerprintChecker(),
        HotPathChecker(),
        ObsHookDisciplineChecker(),
        ExportRoundTripChecker(),
        RegistryHygieneChecker(),
        SnapshotCompleteChecker(),
    ]
    if rules is None:
        return checkers
    wanted = set(rules)
    return [c for c in checkers if wanted & set(c.owned_rules())]


def all_rules() -> list[tuple[str, str]]:
    """(rule, description) pairs across the default checkers."""
    out: list[tuple[str, str]] = []
    for checker in default_checkers():
        for rule in checker.owned_rules():
            out.append((rule, checker.rule_descriptions()[rule]))
    return sorted(out)


__all__ = [
    "DeterminismChecker",
    "ExportRoundTripChecker",
    "FingerprintChecker",
    "HotPathChecker",
    "ObsHookDisciplineChecker",
    "RegistryHygieneChecker",
    "SnapshotCompleteChecker",
    "all_rules",
    "default_checkers",
]
