"""Rule ``registry-hygiene``: registered policies stay documented + tested.

The locality layer is deliberately open: a new placement or CTA policy
is one class plus one registry entry, and the spec layer exposes it by
kind string with no further wiring. The cost of that openness is that
nothing structurally forces a new policy to be explained or exercised —
a registered-but-untested policy is reachable from every config file
yet covered by nothing. This checker closes the loop for every entry of
``PAGE_POLICIES`` and ``CTA_POLICIES``:

* the registered class must have a docstring (the registry is the
  user-facing catalogue; ``repro list`` and DESIGN.md both lean on it);
* the kind string must appear as a quoted literal in at least one file
  under ``tests/`` — the cheapest possible proxy for "some test
  constructs this policy by its public name".

Both registry shapes in the codebase are understood: a dict literal
with string keys (``{"contiguous": ContiguousCta, ...}``, aliases
allowed) and a comprehension over a class tuple
(``{cls.kind: cls for cls in (...)}``), with ``kind`` read from each
class body.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, LintChecker, Project

#: Registry variable names to audit (module-level dict assignments).
REGISTRY_NAMES = ("PAGE_POLICIES", "CTA_POLICIES")


def _class_defs(tree: ast.Module) -> dict[str, ast.ClassDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }


def _kind_of(cls: ast.ClassDef) -> str | None:
    """The ``kind = "..."`` class attribute, if present."""
    for stmt in cls.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "kind":
                value = stmt.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    return value.value
    return None


def _registry_entries(
    node: ast.Assign, classes: dict[str, ast.ClassDef]
) -> list[tuple[str, ast.ClassDef | None]]:
    """(kind, class def or None) pairs of one registry assignment."""
    value = node.value
    entries: list[tuple[str, ast.ClassDef | None]] = []
    if isinstance(value, ast.Dict):
        for key, val in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            cls = classes.get(val.id) if isinstance(val, ast.Name) else None
            entries.append((key.value, cls))
    elif isinstance(value, ast.DictComp):
        # {cls.kind: cls for cls in (A, B, ...)}
        if len(value.generators) != 1:
            return []
        it = value.generators[0].iter
        if not isinstance(it, (ast.Tuple, ast.List)):
            return []
        for elt in it.elts:
            if not isinstance(elt, ast.Name):
                continue
            cls = classes.get(elt.id)
            if cls is None:
                continue
            kind = _kind_of(cls)
            if kind:
                entries.append((kind, cls))
    return entries


class RegistryHygieneChecker(LintChecker):
    """Every registered policy has a docstring and a kind-string test."""

    rule = "registry-hygiene"
    description = (
        "registered placement/CTA policies have docstrings and at least "
        "one test referencing their kind string"
    )

    registry_names = REGISTRY_NAMES

    def finalize(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        test_texts = [text for _, text in project.test_sources()]
        for relpath in sorted(project.files):
            ctx = project.files[relpath]
            classes = _class_defs(ctx.tree)
            for node in ctx.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                names = {
                    t.id for t in node.targets if isinstance(t, ast.Name)
                }
                if not names.intersection(self.registry_names):
                    continue
                registry = sorted(names.intersection(self.registry_names))[0]
                seen_classes: set[str] = set()
                for kind, cls in _registry_entries(node, classes):
                    if cls is not None and cls.name not in seen_classes:
                        seen_classes.add(cls.name)
                        if not ast.get_docstring(cls):
                            findings.append(Finding(
                                rule=self.rule,
                                path=relpath,
                                line=cls.lineno,
                                message=(
                                    f"policy {cls.name!r} (kind {kind!r} "
                                    f"in {registry}) has no docstring — "
                                    "the registry is the user-facing "
                                    "catalogue"
                                ),
                                symbol=cls.name,
                            ))
                    if test_texts and not self._kind_referenced(
                        kind, test_texts
                    ):
                        findings.append(Finding(
                            rule=self.rule,
                            path=relpath,
                            line=node.lineno,
                            message=(
                                f"kind {kind!r} in {registry} is never "
                                "referenced as a literal by any test — "
                                "registered policies need at least one "
                                "test using their public name"
                            ),
                            symbol=registry,
                        ))
        return self._suppressed(findings, project)

    @staticmethod
    def _kind_referenced(kind: str, test_texts: list[str]) -> bool:
        single, double = f"'{kind}'", f'"{kind}"'
        return any(single in text or double in text for text in test_texts)

    def _suppressed(self, findings: list[Finding],
                    project: Project) -> list[Finding]:
        out = []
        for finding in findings:
            ctx = project.files.get(finding.path)
            if ctx is not None:
                allowed = ctx.suppressions.get(finding.line, frozenset())
                if self.rule in allowed or "all" in allowed:
                    continue
            out.append(finding)
        return out
