"""Rules ``hot-path-alloc`` / ``hot-path-attr``: per-access discipline.

PRs 2-3 rebuilt the per-access simulation core around rules the
profiler kept re-teaching: no closures or fresh containers on paths
that run millions of times per simulation, and no repeated attribute
chains inside the issue/drain loops (every ``a.b`` is a dict probe).
Those wins only persist if new code keeps the discipline — this checker
turns it into a machine-checked contract over a *declared registry* of
hot functions.

Declaring a hot function
------------------------
Either add its dotted name to :data:`HOT_FUNCTIONS` (keyed by module
path suffix; ``Class.*`` covers every method), or tag the ``def`` line
in source with ``# repro-lint: hot`` — the marker form keeps new
subsystems from having to edit this module. DESIGN.md "Static
contracts" documents both.

What is flagged inside a hot function
-------------------------------------
* ``hot-path-alloc`` — ``lambda`` and nested ``def`` anywhere in the
  function (closure allocation + late binding), and tuple/list/dict/set
  displays, comprehensions, or bare ``list()``/``dict()``/``set()``/
  ``tuple()`` constructor calls inside any loop (a fresh allocation per
  iteration). Semantically required allocations (e.g. MSHR waiter
  records) stay visible via per-line suppressions or the baseline.
* ``hot-path-attr`` — an attribute chain (``self.x``, ``obj.a.b``) read
  two or more times inside one loop when its root name is not rebound
  by the loop: hoist it to a local before the loop. Chains rooted at
  names the loop itself assigns are exempt (hoisting would change
  semantics).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.analysis.core import HOT_MARK_RE, FileContext, LintChecker

#: Declared hot functions: module path suffix -> dotted-name patterns.
#: These are the paths the BENCH history gates: the fused issue loop,
#: the pooled miss walkers, the engine drain, and translation.
HOT_FUNCTIONS: dict[str, tuple[str, ...]] = {
    "repro/gpu/socket.py": (
        "GpuSocket.access_burst",
        "LocalGpuSocket.access_burst",
    ),
    "repro/sim/path.py": ("ReadPath.*", "WritePath.*"),
    "repro/sim/engine.py": (
        "Engine.run",
        "Engine._run_unbounded",
        "Engine._migrate_window",
    ),
    "repro/memory/page_table.py": ("PageTable.translate",),
    "repro/topology/fabric.py": ("MultiHopFabric.send_bytes",),
}

_CONSTRUCTOR_CALLS = frozenset({"list", "dict", "set", "tuple"})
_DISPLAY_NODES = (
    ast.Tuple, ast.List, ast.Dict, ast.Set,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
)


def _patterns_for(relpath: str) -> tuple[str, ...]:
    path = relpath.replace("\\", "/")
    for suffix, patterns in HOT_FUNCTIONS.items():
        if path.endswith(suffix):
            return patterns
    return ()


def _attr_chain(node: ast.Attribute) -> str | None:
    """Dotted source form of a pure Name/Attribute chain, else None."""
    parts = [node.attr]
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if not isinstance(value, ast.Name):
        return None
    parts.append(value.id)
    return ".".join(reversed(parts))


def _loop_body_walk(loop: ast.AST):
    """Walk a loop's body/orelse without re-entering nested defs."""
    stack = list(getattr(loop, "body", [])) + list(getattr(loop, "orelse", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _names_bound_in(loop: ast.AST) -> set[str]:
    """Names assigned by the loop target or anywhere in the loop body."""
    bound: set[str] = set()
    target = getattr(loop, "target", None)
    nodes = list(ast.walk(target)) if target is not None else []
    nodes += list(_loop_body_walk(loop))
    for node in nodes:
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
    return bound


class HotPathChecker(LintChecker):
    """Enforce allocation/attribute discipline in declared hot functions."""

    rule = "hot-path-alloc"
    description = (
        "closures or per-iteration container allocation in a declared "
        "hot function"
    )
    attr_rule = "hot-path-attr"
    attr_description = (
        "attribute chain read repeatedly inside a hot loop — hoist to a "
        "local"
    )

    def owned_rules(self) -> tuple[str, ...]:
        return (self.rule, self.attr_rule)

    def rule_descriptions(self) -> dict[str, str]:
        return {self.rule: self.description,
                self.attr_rule: self.attr_description}

    def begin_file(self, ctx: FileContext) -> None:
        self._patterns = _patterns_for(ctx.relpath)
        #: hot defs already handled (nested defs are checked with their
        #: parent; the walker must not re-check them as roots).
        self._covered: set[int] = set()

    def on_node(self, node: ast.AST, ctx: FileContext) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if id(node) in self._covered:
            return
        if self._is_hot(node, ctx):
            self._check_function(node, ctx)

    def _is_hot(self, node: ast.FunctionDef, ctx: FileContext) -> bool:
        qualname = ".".join(ctx.scope + [node.name])
        for pattern in self._patterns:
            if fnmatch(qualname, pattern):
                return True
        lines = ctx.source.splitlines()
        if 0 < node.lineno <= len(lines):
            if HOT_MARK_RE.search(lines[node.lineno - 1]):
                return True
        return False

    # ------------------------------------------------------------------
    # per-function checks (self-contained sub-walk)
    # ------------------------------------------------------------------
    def _check_function(self, fn: ast.FunctionDef, ctx: FileContext) -> None:
        symbol = ".".join(ctx.scope + [fn.name])
        for node in ast.walk(fn):
            if isinstance(node, ast.Lambda):
                ctx.report(
                    self.rule, node,
                    "lambda allocates a closure in a hot function",
                    symbol=symbol,
                )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node is not fn:
                self._covered.add(id(node))
                ctx.report(
                    self.rule, node,
                    f"nested function {node.name!r} allocates a closure "
                    "in a hot function",
                    symbol=symbol,
                )
        for loop in self._outermost_loops(fn):
            self._check_loop_allocs(loop, ctx, symbol)
            self._check_loop_attrs(loop, ctx, symbol)

    def _outermost_loops(self, fn: ast.FunctionDef) -> list[ast.AST]:
        """Loops not nested inside another loop (inner bodies are walked
        as part of their outermost ancestor, so nothing double-reports)."""
        all_loops = [
            node for node in ast.walk(fn)
            if isinstance(node, (ast.For, ast.While))
        ]
        inner: set[int] = set()
        for loop in all_loops:
            for node in _loop_body_walk(loop):
                if isinstance(node, (ast.For, ast.While)):
                    inner.add(id(node))
        return [loop for loop in all_loops if id(loop) not in inner]

    def _check_loop_allocs(self, loop: ast.AST, ctx: FileContext,
                           symbol: str) -> None:
        for node in _loop_body_walk(loop):
            if isinstance(node, _DISPLAY_NODES):
                # Store-context tuples/lists (unpacking targets like
                # ``a, b = entry``) allocate nothing.
                if isinstance(node, (ast.Tuple, ast.List)) and isinstance(
                    getattr(node, "ctx", None), (ast.Store, ast.Del)
                ):
                    continue
                kind = type(node).__name__
                ctx.report(
                    self.rule, node,
                    f"{kind} allocates every iteration of a hot loop; "
                    "hoist or restructure",
                    symbol=symbol,
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _CONSTRUCTOR_CALLS:
                    ctx.report(
                        self.rule, node,
                        f"{node.func.id}() allocates every iteration of "
                        "a hot loop; hoist or restructure",
                        symbol=symbol,
                    )

    def _check_loop_attrs(self, loop: ast.AST, ctx: FileContext,
                          symbol: str) -> None:
        rebound = _names_bound_in(loop)
        chains: dict[str, list[ast.Attribute]] = {}
        for node in _loop_body_walk(loop):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            chain = _attr_chain(node)
            if chain is None:
                continue
            if chain.split(".", 1)[0] in rebound:
                continue
            chains.setdefault(chain, []).append(node)
        for chain, nodes in chains.items():
            # `a.b.c` also walks as its prefix `a.b`; report only the
            # longest recorded chain of each lookup.
            if any(
                other != chain and other.startswith(chain + ".")
                for other in chains
            ):
                continue
            if len(nodes) >= 2:
                first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
                ctx.report(
                    self.attr_rule, first,
                    f"attribute chain '{chain}' read {len(nodes)}x inside "
                    "a hot loop; hoist to a local before the loop",
                    symbol=symbol,
                )
