"""Rule ``export-roundtrip``: RunResult fields must survive JSON.

The on-disk result cache and the experiment harness both rely on
``result_to_json_dict`` / ``result_from_json_dict`` being lossless
inverses. A field added to ``RunResult`` but forgotten in either
direction silently truncates every cached result (the reload compares
equal to a *different* run). This checker cross-references three
locations per lint run:

* the ``RunResult`` dataclass definition (its field list is the
  contract);
* the serializer — string keys of dict literals plus
  ``payload["key"] = ...`` subscript assignments inside
  ``result_to_json_dict``;
* the deserializer — keyword arguments of the ``RunResult(...)`` call
  inside ``result_from_json_dict``.

Every field must appear in both directions, or be listed in a
module-level ``JSON_OMITTED_FIELDS`` tuple/set in the export module
(the explicit opt-out for derived/ephemeral fields). Conditional
emission (``if result.edges: payload["edges"] = ...``) counts as
serialized — the goldens-stability idiom of omitting empty defaults is
exactly what the conditional form expresses.

Generic escape hatches are recognised: a serializer built on
``dataclasses.asdict``/``vars`` covers every field structurally, as
does a deserializer splatting ``RunResult(**data)``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, LintChecker, Project

#: The dataclass whose JSON round-trip is verified.
RESULT_CLASS = "RunResult"
TO_JSON_FN = "result_to_json_dict"
FROM_JSON_FN = "result_from_json_dict"
#: Optional module-level constant naming fields intentionally left out.
OMITTED_CONST = "JSON_OMITTED_FIELDS"


def _find_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _find_dataclass_fields(project: Project, class_name: str) -> list[str]:
    for ctx in sorted(project.files.values(), key=lambda c: c.relpath):
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return [
                    stmt.target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and "ClassVar" not in ast.unparse(stmt.annotation)
                ]
    return []


def _omitted_fields(tree: ast.Module) -> set[str]:
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        if OMITTED_CONST not in names or node.value is None:
            continue
        if isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
            return {
                elt.value for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
    return set()


def _serialized_keys(fn: ast.FunctionDef) -> tuple[set[str], bool]:
    """(string keys written, uses a generic asdict/vars serializer)."""
    keys: set[str] = set()
    generic = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                keys.add(sl.value)
        elif isinstance(node, ast.Call):
            f = node.func
            name = (
                f.attr if isinstance(f, ast.Attribute)
                else f.id if isinstance(f, ast.Name) else None
            )
            # asdict(result) / vars(result) at the top of the serializer
            # covers every field without naming any.
            if name in ("asdict", "vars") and node.args:
                generic = True
    return keys, generic


def _restored_kwargs(fn: ast.FunctionDef, class_name: str) -> tuple[set[str], bool]:
    """(keywords passed to ``class_name(...)``, uses ``**`` splat)."""
    kwargs: set[str] = set()
    generic = False
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        name = (
            f.attr if isinstance(f, ast.Attribute)
            else f.id if isinstance(f, ast.Name) else None
        )
        if name != class_name:
            continue
        for kw in node.keywords:
            if kw.arg is None:
                generic = True
            else:
                kwargs.add(kw.arg)
    return kwargs, generic


class ExportRoundTripChecker(LintChecker):
    """Verify RunResult's JSON serializer/deserializer cover all fields."""

    rule = "export-roundtrip"
    description = (
        "every RunResult field appears in both result_to_json_dict and "
        "result_from_json_dict (or in JSON_OMITTED_FIELDS)"
    )

    result_class = RESULT_CLASS
    to_json_fn = TO_JSON_FN
    from_json_fn = FROM_JSON_FN

    def finalize(self, project: Project) -> list[Finding]:
        ctx = project.find_module(defines=(self.to_json_fn, self.from_json_fn))
        if ctx is None:
            return []
        fields = _find_dataclass_fields(project, self.result_class)
        if not fields:
            # Linting the export module without the report module in
            # scope: nothing to verify against.
            return []
        to_fn = _find_function(ctx.tree, self.to_json_fn)
        from_fn = _find_function(ctx.tree, self.from_json_fn)
        omitted = _omitted_fields(ctx.tree)
        findings: list[Finding] = []
        if to_fn is not None:
            keys, generic = _serialized_keys(to_fn)
            if not generic:
                for field_name in fields:
                    if field_name in keys or field_name in omitted:
                        continue
                    findings.append(Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=to_fn.lineno,
                        message=(
                            f"{self.result_class}.{field_name} is never "
                            f"written by {self.to_json_fn}() — cached "
                            "results drop the field on save (add it, or "
                            f"list it in {OMITTED_CONST})"
                        ),
                        symbol=self.to_json_fn,
                    ))
        if from_fn is not None:
            kwargs, generic = _restored_kwargs(from_fn, self.result_class)
            if not generic:
                for field_name in fields:
                    if field_name in kwargs or field_name in omitted:
                        continue
                    findings.append(Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=from_fn.lineno,
                        message=(
                            f"{self.result_class}.{field_name} is never "
                            f"restored by {self.from_json_fn}() — reloaded "
                            "results silently fall back to the default "
                            f"(add it, or list it in {OMITTED_CONST})"
                        ),
                        symbol=self.from_json_fn,
                    ))
        # Stale opt-outs: an omitted field that no longer exists on the
        # dataclass means the constant has drifted from the contract.
        for name in sorted(omitted - set(fields)):
            findings.append(Finding(
                rule=self.rule,
                path=ctx.relpath,
                line=1,
                message=(
                    f"{OMITTED_CONST} lists {name!r} but "
                    f"{self.result_class} has no such field"
                ),
                symbol="<module>",
            ))
        return self._suppressed(findings, ctx)

    def _suppressed(self, findings: list[Finding], ctx) -> list[Finding]:
        out = []
        for finding in findings:
            allowed = ctx.suppressions.get(finding.line, frozenset())
            if self.rule in allowed or "all" in allowed:
                continue
            out.append(finding)
        return out
