"""Rule ``snapshot-complete``: snapshots must cover every mutable field.

The checkpoint layer (DESIGN.md, "Snapshot & resume contract") only
works if ``snapshot_state()`` captures *every* mutable attribute of a
participating class: a field it forgets is silently reconstructed at
its freshly-built default, and a restored run diverges from the cold
run in exactly that counter or cache — the hardest kind of drift to
notice, because everything still *runs*. This checker mirrors
``fingerprint-complete``: it makes the omission un-shippable instead of
relying on review.

For every class that defines ``snapshot_state`` the checker collects:

* **mutable attributes** — the union of the class's ``__slots__``
  entries and every ``self.X`` assignment target in its own
  ``__init__``;
* **covered attributes** — every attribute name and string constant
  appearing in the bodies of ``snapshot_state`` and ``restore_state``;
  when either body references the class's ``_STAT_FIELDS`` table
  (the slotted-counter serialization idiom ``[[key, getattr(self,
  attr)] for attr, key in self._STAT_FIELDS]``), every name in that
  class-body table counts as covered;
* **exempt attributes** — string constants listed in the class-body
  ``_SNAPSHOT_EXEMPT`` tuple, the explicit "mutable but deliberately
  not captured (or rebuilt by construction)" declaration.

Every mutable attribute that is neither covered nor exempt is a
finding, as is a ``snapshot_state`` with no ``restore_state`` beside
it. Classes that inherit ``snapshot_state`` are not re-audited (the
base class's contract is); subclasses adding construction-time slots
(e.g. the fabric's ``EdgeLink``) therefore stay clean by design.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Finding, LintChecker, Project

#: Class-body attribute naming deliberately-uncaptured mutable fields.
EXEMPT_ATTR = "_SNAPSHOT_EXEMPT"

#: Class-body table of the slotted-counter idiom (attr, key) pairs.
STAT_TABLE_ATTR = "_STAT_FIELDS"


def _class_assignment(cls: ast.ClassDef, name: str) -> ast.AST | None:
    """The value assigned to ``name`` in the class body, if any."""
    for stmt in cls.body:
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign)
            else [stmt.target] if isinstance(stmt, ast.AnnAssign)
            else []
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return stmt.value
    return None


def _string_constants(node: ast.AST | None) -> set[str]:
    """Every string constant anywhere under ``node``."""
    if node is None:
        return set()
    return {
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    }


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _self_assigned_attrs(init: ast.FunctionDef | None) -> set[str]:
    """Attribute names assigned on ``self`` anywhere in ``__init__``."""
    if init is None:
        return set()
    out: set[str] = set()
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                if (
                    isinstance(leaf, ast.Attribute)
                    and isinstance(leaf.value, ast.Name)
                    and leaf.value.id == "self"
                ):
                    out.add(leaf.attr)
    return out


class SnapshotCompleteChecker(LintChecker):
    """Verify snapshot/restore cover every mutable attribute."""

    rule = "snapshot-complete"
    description = (
        "every mutable attribute of a class defining snapshot_state is "
        "captured, restored, or listed in _SNAPSHOT_EXEMPT (restored "
        "runs silently diverge in forgotten fields)"
    )

    def finalize(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for ctx in project.files.values():
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_class(node, ctx))
        return findings

    # ------------------------------------------------------------------
    # per-class audit
    # ------------------------------------------------------------------
    def _check_class(self, cls: ast.ClassDef,
                     ctx: FileContext) -> list[Finding]:
        snapshot = _method(cls, "snapshot_state")
        if snapshot is None:
            return []
        restore = _method(cls, "restore_state")
        symbol = f"{cls.name}.snapshot_state"
        findings: list[Finding] = []
        if restore is None:
            findings.append(Finding(
                rule=self.rule,
                path=ctx.relpath,
                line=snapshot.lineno,
                message=(
                    f"{cls.name} defines snapshot_state but no "
                    "restore_state — a snapshot nobody can apply"
                ),
                symbol=symbol,
            ))
        mutable = _string_constants(_class_assignment(cls, "__slots__"))
        mutable |= _self_assigned_attrs(_method(cls, "__init__"))
        covered = self._covered(cls, snapshot, restore)
        exempt = _string_constants(_class_assignment(cls, EXEMPT_ATTR))
        for attr in sorted(mutable - covered - exempt):
            findings.append(Finding(
                rule=self.rule,
                path=ctx.relpath,
                line=snapshot.lineno,
                message=(
                    f"{cls.name}.{attr} is neither captured by "
                    "snapshot_state/restore_state nor listed in "
                    f"{EXEMPT_ATTR} — a restored run silently keeps "
                    "the freshly-built value of that field"
                ),
                symbol=symbol,
            ))
        return self._suppressed(findings, ctx)

    def _covered(self, cls: ast.ClassDef, snapshot: ast.FunctionDef,
                 restore: ast.FunctionDef | None) -> set[str]:
        bodies = [snapshot] + ([restore] if restore is not None else [])
        covered: set[str] = set()
        uses_stat_table = False
        for fn in bodies:
            for node in ast.walk(fn):
                if isinstance(node, ast.Attribute):
                    covered.add(node.attr)
                    if node.attr == STAT_TABLE_ATTR:
                        uses_stat_table = True
                elif isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    # getattr(self, "x") / setattr string forms.
                    covered.add(node.value)
        if uses_stat_table:
            covered |= _string_constants(
                _class_assignment(cls, STAT_TABLE_ATTR)
            )
        return covered

    def _suppressed(self, findings: list[Finding],
                    ctx: FileContext) -> list[Finding]:
        """Apply the class's file per-line suppressions."""
        out = []
        for finding in findings:
            allowed = ctx.suppressions.get(finding.line, frozenset())
            if self.rule in allowed or "all" in allowed:
                continue
            out.append(finding)
        return out
