"""Rule ``obs-hook-discipline``: prebound observability hooks on hot paths.

The observability layer (``repro.obs``; DESIGN.md "Observability
contract") keeps tracing zero-overhead when disabled by *prebinding*:
each instrumented module binds a module-global ``_obs_* = NOOP`` and
registers it with :func:`repro.obs.hooks.register`; enabling a tracer
swaps the global for a bound method. A hook call on a hot path is then
one global load and one no-op call — no attribute-chain lookups, no
``if tracer is not None`` branch.

This checker enforces that pattern inside the declared hot functions
(the same :data:`~repro.analysis.checkers.hotpath.HOT_FUNCTIONS`
registry plus ``# repro-lint: hot`` markers the hot-path checker uses):

* calling a hook through an attribute chain (``self.tracer.on_read(...)``,
  ``obs_hooks.enable(...)``, ``hooks.NOOP(...)``) is flagged — every
  disabled-path call would pay the chain of dict probes;
* guarding a hook with a conditional (``if tracer is not None:``,
  ``if _obs_read is not NOOP:``, ``if is_enabled():``) is flagged — the
  prebound NOOP already makes the disabled path branch-free.

Bare module-global calls (``_obs_read_begin(self)``) pass.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.hotpath import HotPathChecker
from repro.analysis.core import FileContext

#: Attribute-chain segments that identify an observability access.
_OBS_SEGMENTS = frozenset({"tracer", "_tracer", "obs_hooks", "hooks"})

#: Names that identify observability state in a hook-guard conditional.
_OBS_GUARD_NAMES = frozenset({"tracer", "_tracer", "is_enabled", "NOOP"})


def _is_obs_name(name: str) -> bool:
    return name.startswith("_obs") or name in _OBS_SEGMENTS


def _chain_parts(node: ast.Attribute) -> list[str] | None:
    """Segments of a pure Name/Attribute chain, outermost first."""
    parts = [node.attr]
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if not isinstance(value, ast.Name):
        return None
    parts.append(value.id)
    parts.reverse()
    return parts


class ObsHookDisciplineChecker(HotPathChecker):
    """Enforce the prebound-NOOP hook pattern in declared hot functions.

    Subclasses the hot-path checker purely to reuse its hot-function
    detection (``HOT_FUNCTIONS`` patterns + the ``# repro-lint: hot``
    marker); the checks themselves are independent.
    """

    rule = "obs-hook-discipline"
    description = (
        "observability hook reached through an attribute chain or "
        "conditional in a declared hot function — use the prebound "
        "module-level NOOP callable (repro.obs.hooks.register)"
    )

    def owned_rules(self) -> tuple[str, ...]:
        return (self.rule,)

    def rule_descriptions(self) -> dict[str, str]:
        return {self.rule: self.description}

    # Reuse begin_file/on_node/_is_hot from HotPathChecker; replace the
    # per-function checks entirely.
    def _check_function(self, fn: ast.FunctionDef, ctx: FileContext) -> None:
        symbol = ".".join(ctx.scope + [fn.name])
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn:
                    self._covered.add(id(node))
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                parts = _chain_parts(node.func)
                if parts is not None and any(
                    _is_obs_name(part) for part in parts
                ):
                    chain = ".".join(parts)
                    ctx.report(
                        self.rule, node,
                        f"hook call through attribute chain '{chain}' in a "
                        "hot function; bind a module-level _obs_* callable "
                        "via repro.obs.hooks.register instead",
                        symbol=symbol,
                    )
            elif isinstance(node, (ast.If, ast.IfExp)):
                guard = self._obs_guard(node.test)
                if guard is not None:
                    ctx.report(
                        self.rule, node,
                        f"conditional on '{guard}' guards an observability "
                        "hook in a hot function; the prebound NOOP pattern "
                        "makes the disabled path branch-free",
                        symbol=symbol,
                    )

    def _obs_guard(self, test: ast.AST) -> str | None:
        """The obs-state name a conditional tests, or None."""
        for node in ast.walk(test):
            if isinstance(node, ast.Name):
                if node.id.startswith("_obs") or node.id in _OBS_GUARD_NAMES:
                    return node.id
            elif isinstance(node, ast.Attribute):
                if node.attr.startswith("_obs") or node.attr in _OBS_GUARD_NAMES:
                    parts = _chain_parts(node)
                    return ".".join(parts) if parts else node.attr
        return None
