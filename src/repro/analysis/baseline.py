"""Committed finding baseline: grandfather old findings, gate new ones.

The baseline file (``lint_baseline.json`` at the repo root) records the
findings a past PR consciously accepted. The drift gate is asymmetric:

* a finding **not** covered by the baseline is *new* — the lint fails;
* a baseline entry with no matching finding is *stale* — the lint warns
  (so cleanups show up) but passes; ``--update-baseline`` rewrites the
  file to the current state.

Entries match on :meth:`repro.analysis.core.Finding.key` — ``(rule,
path, symbol, message)`` with a per-key count — so unrelated edits that
shift line numbers never invalidate the baseline, while a *second*
instance of a grandfathered pattern in the same function still fails.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

#: Default baseline filename, resolved against the repo root.
BASELINE_NAME = "lint_baseline.json"


@dataclass
class BaselineDiff:
    """Outcome of matching current findings against the baseline."""

    #: findings not covered by the baseline (these fail the lint).
    new: list[Finding] = field(default_factory=list)
    #: baseline keys with fewer (or no) current findings (warn only).
    stale: list[dict] = field(default_factory=list)
    #: number of current findings absorbed by the baseline.
    baselined: int = 0


def load_baseline(path: Path) -> Counter:
    """Baseline key counts; an absent file is an empty baseline."""
    if not path.is_file():
        return Counter()
    data = json.loads(path.read_text())
    counts: Counter = Counter()
    for entry in data.get("findings", []):
        key = (entry["rule"], entry["path"], entry["symbol"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def save_baseline(path: Path, findings: list[Finding]) -> int:
    """Write the current findings as the new baseline; returns entry count."""
    counts = Counter(f.key() for f in findings)
    entries = [
        {
            "rule": rule,
            "path": relpath,
            "symbol": symbol,
            "message": message,
            "count": count,
        }
        for (rule, relpath, symbol, message), count in sorted(counts.items())
    ]
    payload = {
        "comment": (
            "Grandfathered repro-lint findings. New findings fail CI; "
            "stale entries warn. Regenerate with: repro lint src scripts "
            "--update-baseline"
        ),
        "version": 1,
        "findings": entries,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return len(entries)


def diff_against_baseline(findings: list[Finding], baseline: Counter) -> BaselineDiff:
    """Split findings into new vs baselined and report stale entries."""
    diff = BaselineDiff()
    remaining = Counter(baseline)
    for finding in findings:
        key = finding.key()
        if remaining[key] > 0:
            remaining[key] -= 1
            diff.baselined += 1
        else:
            diff.new.append(finding)
    for (rule, relpath, symbol, message), count in sorted(remaining.items()):
        if count > 0:
            diff.stale.append({
                "rule": rule,
                "path": relpath,
                "symbol": symbol,
                "message": message,
                "count": count,
            })
    return diff
