"""`repro lint`: contract-enforcing static analysis for this repository.

The simulator's load-bearing guarantees — bit-identical goldens under
``(time, seq)`` event order, content-addressed config identity via
``config_fingerprint``, and the zero-alloc hot-path discipline — are
runtime-tested but easy to regress silently: one unseeded
``random.Random()``, one un-fingerprinted config field, or one closure
allocated inside ``access_burst`` only surfaces later as a flaky golden
or a BENCH regression. This package enforces those contracts *before*
merge with an AST-based checker framework:

* :mod:`repro.analysis.core` — the shared single-parse file walker,
  finding model, per-line suppression comments, and checker registry;
* :mod:`repro.analysis.baseline` — the committed grandfathering file
  (``lint_baseline.json``) with a drift gate: new findings fail, stale
  entries warn;
* :mod:`repro.analysis.reporters` — text and JSON output;
* :mod:`repro.analysis.checkers` — the five contract checkers
  (determinism, fingerprint-completeness, hot-path discipline, export
  round-trip, registry hygiene);
* :mod:`repro.analysis.cli` — the ``repro lint`` command (also the CI
  gate; see DESIGN.md "Static contracts").
"""

from repro.analysis.core import Finding, LintChecker, Project, analyze

__all__ = ["Finding", "LintChecker", "Project", "analyze"]
