"""Lint output renderers: human text and machine JSON.

Both render the same :class:`~repro.analysis.baseline.BaselineDiff`
view: *new* findings (gate failures), baselined count, and stale
baseline entries (warnings). The JSON form is the CI artifact — stable
keys, sorted rows — so the gate can be post-processed without scraping
text.
"""

from __future__ import annotations

import json

from repro.analysis.baseline import BaselineDiff
from repro.analysis.core import Finding


def render_text(
    findings: list[Finding],
    diff: BaselineDiff,
    checked_files: int,
) -> str:
    """Human-readable report (one line per new finding)."""
    lines: list[str] = []
    for finding in diff.new:
        lines.append(finding.render())
    if diff.stale:
        lines.append("")
        for entry in diff.stale:
            lines.append(
                f"warning: stale baseline entry ({entry['count']}x) "
                f"{entry['path']} [{entry['rule']}] {entry['symbol']}: "
                f"{entry['message']}"
            )
    lines.append("")
    status = "FAIL" if diff.new else "OK"
    lines.append(
        f"{status}: {len(diff.new)} new finding(s), "
        f"{diff.baselined} baselined, {len(diff.stale)} stale baseline "
        f"entr{'y' if len(diff.stale) == 1 else 'ies'}, "
        f"{checked_files} file(s) checked"
    )
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    diff: BaselineDiff,
    checked_files: int,
) -> str:
    """Machine-readable report (the CI gate artifact)."""
    payload = {
        "ok": not diff.new,
        "checked_files": checked_files,
        "new_findings": [f.to_dict() for f in diff.new],
        "baselined_count": diff.baselined,
        "stale_baseline": diff.stale,
        "all_findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=1, sort_keys=True)
