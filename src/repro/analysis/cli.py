"""``repro lint`` — run the contract checkers with a baseline gate.

Exit codes (CI contract):

* ``0`` — no findings beyond the committed baseline (stale baseline
  entries only warn: they mean a grandfathered finding was fixed and
  the baseline should be regenerated);
* ``1`` — at least one new finding (or an unreadable baseline);
* ``2`` — usage errors (no files matched, unknown rule names).

Typical invocations::

    repro lint src scripts                  # text report, exit code gate
    repro lint src scripts --format json    # machine-readable (CI)
    repro lint src --update-baseline        # re-grandfather the current set
    repro lint src --no-baseline            # absolute report, no gate
    repro lint --list-rules                 # rule catalogue
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.baseline import (
    BASELINE_NAME,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.checkers import all_rules, default_checkers
from repro.analysis.core import analyze, iter_python_files
from repro.analysis.reporters import render_json, render_text


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src", "scripts"],
        help="files or directories to lint (default: src scripts)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: <root>/{BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: every finding is reported and gates",
    )
    parser.add_argument(
        "--rules", default=None, metavar="RULE[,RULE...]",
        help="run only the named rules (see --list-rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="project root for relative paths/baseline (default: cwd)",
    )
    parser.add_argument(
        "--tests-dir", default=None, metavar="DIR",
        help="tests directory for registry-hygiene references "
        "(default: <root>/tests)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` from parsed arguments."""
    if args.list_rules:
        for rule, description in all_rules():
            print(f"{rule:22s} {description}")
        return 0

    rules: tuple[str, ...] | None = None
    if args.rules:
        rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
        known = {rule for rule, _ in all_rules()}
        unknown = sorted(set(rules) - known)
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)} "
                  f"(see --list-rules)")
            return 2

    root = Path(args.root).resolve() if args.root else Path.cwd().resolve()
    paths = [Path(p) if Path(p).is_absolute() else root / p
             for p in args.paths]
    files = iter_python_files(paths)
    if not files:
        print(f"error: no Python files under: "
              f"{', '.join(str(p) for p in args.paths)}")
        return 2

    tests_dir = Path(args.tests_dir).resolve() if args.tests_dir else None
    checkers = default_checkers(rules)
    findings, _project = analyze(
        paths, checkers, root=root, tests_dir=tests_dir
    )

    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_absolute():
            baseline_path = root / baseline_path
    else:
        baseline_path = root / BASELINE_NAME

    if args.update_baseline:
        count = save_baseline(baseline_path, findings)
        print(f"wrote {count} baselined finding(s) to {baseline_path}")
        return 0

    if args.no_baseline or not baseline_path.exists():
        baseline = None
    else:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as error:
            print(f"error: cannot read baseline {baseline_path}: {error}")
            return 1

    diff = diff_against_baseline(findings, baseline or {})
    if args.format == "json":
        print(render_json(findings, diff, len(files)))
    else:
        print(render_text(findings, diff, len(files)))
    return 1 if diff.new else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="contract-enforcing static analysis for the repro tree",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
