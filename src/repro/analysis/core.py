"""Checker framework: findings, suppressions, and the shared AST walk.

Every file is parsed exactly once; a single recursive walker maintains
the lexical context (enclosing class/function chain, loop depth) and
dispatches each node to every registered checker. Checkers come in two
flavours, both subclasses of :class:`LintChecker`:

* **per-node** — implement :meth:`LintChecker.on_node` (and optionally
  ``begin_file``/``end_file``) to flag patterns inside one file;
* **project-level** — implement :meth:`LintChecker.finalize`, which runs
  after every file is parsed and may correlate across modules (the
  fingerprint-completeness, export-round-trip, and registry-hygiene
  checkers all need two or more files).

Suppression grammar
-------------------
A finding is suppressed when the physical line it is reported on carries
a trailing comment of the form::

    # repro-lint: disable=<rule>[,<rule>...]

``disable=all`` suppresses every rule on that line. Suppressions are
per-line only — there is no block or file scope — so every grandfathered
exception is visible exactly where it applies. Findings that should
outlive their line numbers belong in the committed baseline instead
(:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Matches one suppression comment anywhere in a source line.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Matches the hot-path marker comment on a ``def`` line (see the
#: hot-path checker: functions can opt in without editing its registry).
HOT_MARK_RE = re.compile(r"#\s*repro-lint:\s*hot\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``symbol`` is the dotted enclosing scope (``Class.method`` or
    ``<module>``); the baseline matches on ``(rule, path, symbol,
    message)`` so entries survive unrelated line-number drift.
    """

    rule: str
    path: str
    line: int
    message: str
    symbol: str = "<module>"

    def key(self) -> tuple[str, str, str, str]:
        """Line-number-independent identity used by the baseline."""
        return (self.rule, self.path, self.symbol, self.message)

    def to_dict(self) -> dict:
        """JSON form (the ``--format json`` reporter row)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human form (the text reporter row)."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.symbol}: {self.message}"


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppressed rule names (1-based line numbers)."""
    table: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            rules = frozenset(
                r.strip() for r in match.group(1).split(",") if r.strip()
            )
            table[lineno] = rules
    return table


@dataclass
class FileContext:
    """Everything a per-node checker can see while one file is walked."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]
    findings: list[Finding] = field(default_factory=list)
    #: lexical scope chain, e.g. ["GpuSocket", "access_burst"].
    scope: list[str] = field(default_factory=list)
    #: stack of enclosing ``for``/``while`` nodes (innermost last).
    loops: list[ast.AST] = field(default_factory=list)

    @property
    def symbol(self) -> str:
        """Dotted enclosing scope of the current node."""
        return ".".join(self.scope) if self.scope else "<module>"

    def report(self, rule: str, node: ast.AST, message: str,
               symbol: str | None = None) -> None:
        """File a finding unless its line suppresses ``rule``."""
        line = getattr(node, "lineno", 1)
        allowed = self.suppressions.get(line, frozenset())
        if rule in allowed or "all" in allowed:
            return
        self.findings.append(Finding(
            rule=rule,
            path=self.relpath,
            line=line,
            message=message,
            symbol=symbol if symbol is not None else self.symbol,
        ))


@dataclass
class Project:
    """All parsed files of one lint invocation plus repo-level context."""

    #: repository root (baseline + cross-file checkers resolve against it).
    root: Path
    #: directory scanned for test references (registry hygiene); usually
    #: ``root / "tests"``, overridable for fixture projects.
    tests_dir: Path | None = None
    files: dict[str, FileContext] = field(default_factory=dict)

    def find_module(self, *, suffix: str | None = None,
                    defines: tuple[str, ...] = ()) -> FileContext | None:
        """Locate one module by path suffix and/or top-level names.

        ``defines`` are names that must all appear as module-level
        function/class defs or assignments. Matching by content (not just
        path) keeps the project-level checkers testable against fixture
        trees that mirror the real layout loosely.
        """
        candidates = []
        for relpath, ctx in sorted(self.files.items()):
            if suffix is not None and not relpath.endswith(suffix):
                continue
            if defines and not _defines_all(ctx.tree, defines):
                continue
            candidates.append(ctx)
        if candidates:
            return candidates[0]
        if suffix is not None and defines:
            # Fall back to content-only matching (fixture trees).
            return self.find_module(defines=defines)
        return None

    def test_sources(self) -> list[tuple[Path, str]]:
        """Raw text of every test file (registry-hygiene references)."""
        tests = self.tests_dir
        if tests is None or not tests.is_dir():
            return []
        return [
            (path, path.read_text(errors="replace"))
            for path in sorted(tests.rglob("test_*.py"))
        ]


def _defines_all(tree: ast.Module, names: tuple[str, ...]) -> bool:
    defined: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defined.add(node.target.id)
    return all(name in defined for name in names)


class LintChecker:
    """Base class: one named rule family over the shared walk."""

    #: rule identifier used in reports, suppressions, and --rules.
    rule = ""
    #: one-line description for ``repro lint --list-rules``.
    description = ""

    def owned_rules(self) -> tuple[str, ...]:
        """Rule names this checker can report (usually just one)."""
        return (self.rule,) if self.rule else ()

    def rule_descriptions(self) -> dict[str, str]:
        """rule -> one-line description, for ``--list-rules``."""
        return {self.rule: self.description} if self.rule else {}

    def begin_file(self, ctx: FileContext) -> None:
        """Hook before a file's walk starts."""

    def on_node(self, node: ast.AST, ctx: FileContext) -> None:
        """Hook for every AST node of every file (pre-order)."""

    def end_file(self, ctx: FileContext) -> None:
        """Hook after a file's walk completes."""

    def finalize(self, project: Project) -> list[Finding]:
        """Hook after all files are parsed (cross-file checkers)."""
        return []


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
_LOOP_NODES = (ast.For, ast.While)


def _walk(node: ast.AST, ctx: FileContext, checkers: list[LintChecker]) -> None:
    for checker in checkers:
        checker.on_node(node, ctx)
    is_scope = isinstance(node, _SCOPE_NODES)
    is_loop = isinstance(node, _LOOP_NODES)
    if is_scope:
        ctx.scope.append(node.name)
    if is_loop:
        ctx.loops.append(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, ctx, checkers)
    if is_loop:
        ctx.loops.pop()
    if is_scope:
        ctx.scope.pop()


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    seen.setdefault(sub.resolve(), None)
        elif path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
    return sorted(seen)


def analyze(
    paths: list[Path],
    checkers: list[LintChecker],
    root: Path | None = None,
    tests_dir: Path | None = None,
) -> tuple[list[Finding], Project]:
    """Lint ``paths`` with ``checkers``; returns (findings, project).

    Files that fail to parse produce a single ``syntax-error`` finding
    rather than aborting the run (CI should report every broken file).
    """
    root = (root or Path.cwd()).resolve()
    if tests_dir is None and (root / "tests").is_dir():
        tests_dir = root / "tests"
    project = Project(root=root, tests_dir=tests_dir)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            relpath = str(path.relative_to(root))
        except ValueError:
            relpath = str(path)
        source = path.read_text(errors="replace")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            findings.append(Finding(
                rule="syntax-error",
                path=relpath,
                line=error.lineno or 1,
                message=f"file does not parse: {error.msg}",
            ))
            continue
        ctx = FileContext(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )
        project.files[relpath] = ctx
        for checker in checkers:
            checker.begin_file(ctx)
        _walk(tree, ctx, checkers)
        for checker in checkers:
            checker.end_file(ctx)
        findings.extend(ctx.findings)
    for checker in checkers:
        findings.extend(checker.finalize(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings, project
