"""Parametric workload factory for user-defined experiments.

The 41-entry suite covers the paper's evaluation; this module lets a
downstream user compose their own workload from the same pattern
vocabulary without touching the spec dataclasses directly.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.patterns import PatternKind
from repro.workloads.spec import KernelSpec, WorkloadSpec

#: Friendly aliases accepted by :func:`make_workload`.
_PATTERN_ALIASES = {
    "stream": PatternKind.PRIVATE_STREAM,
    "private": PatternKind.PRIVATE_REUSE,
    "reuse": PatternKind.PRIVATE_REUSE,
    "stencil": PatternKind.STENCIL_HALO,
    "halo": PatternKind.STENCIL_HALO,
    "shared": PatternKind.SHARED_READ,
    "broadcast": PatternKind.SHARED_READ,
    "random": PatternKind.RANDOM_GLOBAL,
    "graph": PatternKind.RANDOM_GLOBAL,
    "reduction": PatternKind.REDUCTION,
}


def resolve_pattern(name: str | PatternKind) -> PatternKind:
    """Accept a PatternKind or one of the friendly aliases."""
    if isinstance(name, PatternKind):
        return name
    kind = _PATTERN_ALIASES.get(name.lower())
    if kind is None:
        raise WorkloadError(
            f"unknown pattern {name!r}; choose from {sorted(_PATTERN_ALIASES)}"
        )
    return kind


def make_workload(
    name: str,
    pattern: str | PatternKind = "private",
    n_ctas: int = 512,
    footprint_mb: int = 64,
    slices_per_cta: int = 6,
    ops_per_slice: int = 16,
    compute_per_slice: int = 40,
    write_fraction: float = 0.15,
    reduction_fraction: float = 0.0,
    shared_access_fraction: float = 0.5,
    halo_fraction: float = 0.12,
    iterations: int = 2,
    init_shared: bool = False,
    seed: int = 1234,
) -> WorkloadSpec:
    """Build a one-kernel workload from scratch.

    ``reduction_fraction`` > 0 appends end-of-kernel reduction slices to
    the chosen base pattern (the Section 4 motivating scenario).

    Example
    -------
    >>> wl = make_workload("my-broadcast", pattern="shared",
    ...                    shared_access_fraction=0.8, init_shared=True)
    >>> wl.kernels[0].pattern_mix  # doctest: +ELLIPSIS
    {<PatternKind.SHARED_READ: 'shared_read'>: 1.0}
    """
    base = resolve_pattern(pattern)
    if not 0.0 <= reduction_fraction < 1.0:
        raise WorkloadError("reduction_fraction must be in [0, 1)")
    if reduction_fraction > 0.0:
        mix = {base: 1.0 - reduction_fraction,
               PatternKind.REDUCTION: reduction_fraction}
    else:
        mix = {base: 1.0}
    kernel = KernelSpec(
        name="main",
        cta_fraction=1.0,
        slices_per_cta=slices_per_cta,
        ops_per_slice=ops_per_slice,
        compute_per_slice=compute_per_slice,
        write_fraction=write_fraction,
        pattern_mix=mix,
    )
    return WorkloadSpec(
        name=name,
        suite="custom",
        paper_avg_ctas=n_ctas,
        paper_footprint_mb=footprint_mb,
        kernels=(kernel,),
        iterations=iterations,
        shared_access_fraction=shared_access_fraction,
        halo_fraction=halo_fraction,
        init_shared=init_shared,
        seed=seed,
        description=f"custom {base.value} workload",
    )
