"""Workloads: pattern generators, specs, the 41-entry suite, factory."""

from repro.workloads.patterns import PatternGeometry, PatternKind, Region
from repro.workloads.spec import (
    MEDIUM,
    SCALES,
    SMALL,
    TINY,
    KernelSpec,
    WorkloadScale,
    WorkloadSpec,
)
from repro.workloads.suite import (
    GREY_BOX,
    STUDY_SET,
    SUITE,
    get_workload,
    workloads_by_suite,
)
from repro.workloads.synthetic import make_workload, resolve_pattern
from repro.workloads.trace import (
    KernelTrace,
    WorkloadTrace,
    load_trace,
    record_trace,
    save_trace,
)

__all__ = [
    "PatternGeometry",
    "PatternKind",
    "Region",
    "MEDIUM",
    "SCALES",
    "SMALL",
    "TINY",
    "KernelSpec",
    "WorkloadScale",
    "WorkloadSpec",
    "GREY_BOX",
    "STUDY_SET",
    "SUITE",
    "get_workload",
    "workloads_by_suite",
    "make_workload",
    "resolve_pattern",
    "KernelTrace",
    "WorkloadTrace",
    "load_trace",
    "record_trace",
    "save_trace",
]
