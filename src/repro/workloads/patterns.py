"""Address-stream generators: the six pattern families.

Each generator produces the byte addresses one CTA touches in one slice.
The families map onto the behaviour classes visible in the paper's
figures:

* ``PRIVATE_STREAM`` — CTA i sweeps its own contiguous chunk once
  (Stream-Triad-like; perfectly local under contiguous scheduling +
  first touch, cache-hostile but bandwidth friendly).
* ``PRIVATE_REUSE`` — CTA i loops over its chunk repeatedly
  (Backprop/Srad/Kmeans-like; cache friendly and local).
* ``STENCIL_HALO`` — mostly private, a configurable fraction touches the
  neighbouring CTA's chunk edge (Hotspot/Pathfinder-like; small remote
  fraction at socket boundaries).
* ``SHARED_READ`` — a fraction of reads hit a global read-shared region
  (lookup tables, NN weights; remote-heavy no matter the placement).
* ``RANDOM_GLOBAL`` — uniform random over the whole footprint
  (graph workloads; ~ (N-1)/N remote in an N-socket system).
* ``REDUCTION`` — writes funnel into a small shared output region
  (typically homed on one socket), producing the asymmetric egress
  saturation of Figure 5.
* ``GATHER_READ`` — the mirror phase: every CTA reads the master-homed
  output region (prolongation, broadcast of gathered results), saturating
  the master's egress instead.

All generators are deterministic in ``(seed, kernel, cta)``.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.config import LINE_SIZE
from repro.errors import WorkloadError


class PatternKind(enum.Enum):
    """The six address-stream families."""

    PRIVATE_STREAM = "private_stream"
    PRIVATE_REUSE = "private_reuse"
    STENCIL_HALO = "stencil_halo"
    SHARED_READ = "shared_read"
    RANDOM_GLOBAL = "random_global"
    REDUCTION = "reduction"
    GATHER_READ = "gather_read"


@dataclass(frozen=True)
class Region:
    """A contiguous byte range of the workload's address space."""

    start: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise WorkloadError(f"region at {self.start} has size {self.nbytes}")

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.start + self.nbytes

    @property
    def n_lines(self) -> int:
        """Whole cache lines covered."""
        return max(1, self.nbytes // LINE_SIZE)

    def line_addr(self, index: int) -> int:
        """Byte address of line ``index`` (mod the region size)."""
        return self.start + (index % self.n_lines) * LINE_SIZE


@dataclass(frozen=True)
class PatternGeometry:
    """Everything a generator needs to lay out one kernel's accesses."""

    n_ctas: int
    private_region: Region
    shared_region: Region
    output_region: Region
    halo_fraction: float = 0.15
    shared_fraction: float = 0.5

    def cta_chunk(self, cta: int) -> Region:
        """CTA ``cta``'s private chunk (contiguous CTA-major layout)."""
        lines_per_cta = max(1, self.private_region.n_lines // max(1, self.n_ctas))
        start_line = (cta % max(1, self.n_ctas)) * lines_per_cta
        return Region(
            self.private_region.start + start_line * LINE_SIZE,
            lines_per_cta * LINE_SIZE,
        )


def generate_addresses(
    kind: PatternKind,
    geometry: PatternGeometry,
    cta: int,
    n_ops: int,
    rng: random.Random,
    slice_index: int = 0,
    phase_offset: int = 0,
) -> list[int]:
    """Addresses one CTA touches in one slice under ``kind``.

    ``phase_offset`` shifts chunk-relative accesses per kernel invocation,
    modelling the double-buffering of iterative kernels: iteration k+1
    reads different lines than iteration k wrote, so caches cannot carry
    private data across kernel boundaries (only the hot shared regions
    legitimately persist).
    """
    if n_ops <= 0:
        return []
    chunk = geometry.cta_chunk(cta)
    # Region.start / Region.n_lines are hoisted to locals: the generators
    # run once per (CTA, slice) over every op, and n_lines is a computed
    # property. The arithmetic (and the rng call sequence) is unchanged,
    # so generated streams are identical to the per-call form.
    chunk_start = chunk.start
    chunk_lines = chunk.n_lines
    if kind is PatternKind.PRIVATE_STREAM:
        base = phase_offset + slice_index * n_ops
        return [
            chunk_start + ((base + i) % chunk_lines) * LINE_SIZE
            for i in range(n_ops)
        ]
    if kind is PatternKind.PRIVATE_REUSE:
        # Loop over a working set sized to the slice burst: high reuse.
        working_lines = max(2, min(chunk_lines, n_ops))
        return [
            chunk_start + ((phase_offset + i % working_lines) % chunk_lines) * LINE_SIZE
            for i in range(n_ops)
        ]
    if kind is PatternKind.STENCIL_HALO:
        addrs = []
        neighbour = geometry.cta_chunk(cta + 1)
        n_start = neighbour.start
        n_lines = neighbour.n_lines
        base = phase_offset + slice_index * n_ops
        halo = geometry.halo_fraction
        random_ = rng.random
        randrange = rng.randrange
        for i in range(n_ops):
            if random_() < halo:
                addrs.append(n_start + (randrange(n_lines) % n_lines) * LINE_SIZE)
            else:
                addrs.append(chunk_start + ((base + i) % chunk_lines) * LINE_SIZE)
        return addrs
    if kind is PatternKind.SHARED_READ:
        shared = geometry.shared_region
        s_start = shared.start
        s_lines = shared.n_lines
        base = phase_offset + slice_index * n_ops
        fraction = geometry.shared_fraction
        random_ = rng.random
        randrange = rng.randrange
        addrs = []
        for i in range(n_ops):
            if random_() < fraction:
                addrs.append(s_start + (randrange(s_lines) % s_lines) * LINE_SIZE)
            else:
                addrs.append(chunk_start + ((base + i) % chunk_lines) * LINE_SIZE)
        return addrs
    if kind is PatternKind.RANDOM_GLOBAL:
        region = geometry.private_region
        r_start = region.start
        r_lines = region.n_lines
        randrange = rng.randrange
        return [
            r_start + (randrange(r_lines) % r_lines) * LINE_SIZE
            for _ in range(n_ops)
        ]
    if kind in (PatternKind.REDUCTION, PatternKind.GATHER_READ):
        out = geometry.output_region
        o_start = out.start
        o_lines = out.n_lines
        randrange = rng.randrange
        return [
            o_start + (randrange(o_lines) % o_lines) * LINE_SIZE
            for _ in range(n_ops)
        ]
    raise WorkloadError(f"unknown pattern kind {kind!r}")  # pragma: no cover
