"""The 41-workload suite (Table 2).

Each entry carries the paper-reported metadata (time-weighted average CTA
count and memory footprint in MB, Table 2) plus a behavioural profile that
reproduces the workload's *class* as placed by the paper's figures:

* the nine grey-box workloads of Figure 3 (>= 99% of theoretical scaling
  with software-only locality optimization) use private patterns,
* the left side of Figures 6 and 8 (interconnect-bound) uses
  random-global, broadcast-shared, and reduction patterns,
* the right side uses stencil and private-reuse patterns with small halo
  or shared fractions.

The paper's traces are proprietary; these synthetic profiles are the
substitution documented in DESIGN.md. The CTA counts and footprints are
real (Table 2) and drive Figure 2 and Table 2 directly.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.patterns import PatternKind
from repro.workloads.spec import KernelSpec, WorkloadSpec

# ---------------------------------------------------------------------------
# profile builders
# ---------------------------------------------------------------------------


def _kernel(
    name: str,
    mix: dict[PatternKind, float],
    cta_fraction: float = 1.0,
    slices: int = 6,
    ops: int = 16,
    compute: int = 40,
    writes: float = 0.15,
) -> KernelSpec:
    return KernelSpec(
        name=name,
        cta_fraction=cta_fraction,
        slices_per_cta=slices,
        ops_per_slice=ops,
        compute_per_slice=compute,
        write_fraction=writes,
        pattern_mix=mix,
    )


def _private_reuse(
    name: str,
    suite: str,
    ctas: int,
    mb: int,
    compute: int = 120,
    iterations: int = 2,
    description: str = "",
) -> WorkloadSpec:
    """Grey-box profile: per-CTA working sets, cache friendly, local."""
    return WorkloadSpec(
        name=name,
        suite=suite,
        paper_avg_ctas=ctas,
        paper_footprint_mb=mb,
        kernels=(
            _kernel(
                "main",
                {PatternKind.PRIVATE_REUSE: 1.0},
                compute=compute,
                writes=0.1,
            ),
        ),
        iterations=iterations,
        description=description or "private per-CTA working set, high reuse",
    )


def _streaming(
    name: str, suite: str, ctas: int, mb: int, description: str = ""
) -> WorkloadSpec:
    """Grey-box profile: single streaming sweep, bandwidth bound."""
    return WorkloadSpec(
        name=name,
        suite=suite,
        paper_avg_ctas=ctas,
        paper_footprint_mb=mb,
        kernels=(
            _kernel(
                "stream",
                {PatternKind.PRIVATE_STREAM: 1.0},
                slices=8,
                ops=24,
                compute=10,
                writes=0.33,
            ),
        ),
        iterations=1,
        description=description or "streaming sweep, one touch per line",
    )


def _graph(
    name: str,
    suite: str,
    ctas: int,
    mb: int,
    writes: float = 0.12,
    iterations: int = 3,
    compute: int = 30,
    random_fraction: float = 0.3,
    description: str = "",
) -> WorkloadSpec:
    """Irregular profile: random indirection over CSR-style private rows.

    Graph kernels read their own vertex range contiguously (CSR rows) and
    chase edges into random neighbours; ``random_fraction`` of slices are
    the edge-chasing part.
    """
    return WorkloadSpec(
        name=name,
        suite=suite,
        paper_avg_ctas=ctas,
        paper_footprint_mb=mb,
        kernels=(
            _kernel(
                "traverse",
                {
                    PatternKind.RANDOM_GLOBAL: random_fraction,
                    PatternKind.PRIVATE_STREAM: 1.0 - random_fraction,
                },
                slices=5,
                ops=14,
                compute=compute,
                writes=writes,
            ),
        ),
        iterations=iterations,
        description=description or "irregular graph traversal over CSR rows",
    )


def _shared_tables(
    name: str,
    suite: str,
    ctas: int,
    mb: int,
    shared_access: float = 0.7,
    compute: int = 50,
    iterations: int = 2,
    description: str = "",
) -> WorkloadSpec:
    """Table-lookup profile: a read-shared region larger than one L2.

    The tables are striped by first touch (the natural UVM outcome), are
    too big for any single cache, and are re-referenced several times per
    kernel — the combination that makes memory-side L2s useless for them
    and GPU-side remote caching (Figure 8) so effective.
    """
    return WorkloadSpec(
        name=name,
        suite=suite,
        paper_avg_ctas=ctas,
        paper_footprint_mb=mb,
        kernels=(
            _kernel(
                "lookup",
                {PatternKind.SHARED_READ: 0.6, PatternKind.PRIVATE_REUSE: 0.4},
                slices=10,
                ops=20,
                compute=compute,
                writes=0.05,
            ),
        ),
        iterations=iterations,
        shared_access_fraction=shared_access,
        shared_fraction_of_footprint=0.33,
        description=description or "hot shared lookup tables (first-touch striped)",
    )


def _stencil(
    name: str,
    suite: str,
    ctas: int,
    mb: int,
    halo: float = 0.12,
    compute: int = 60,
    iterations: int = 3,
    writes: float = 0.2,
    description: str = "",
) -> WorkloadSpec:
    """Structured-grid profile: private chunks with neighbour halos."""
    return WorkloadSpec(
        name=name,
        suite=suite,
        paper_avg_ctas=ctas,
        paper_footprint_mb=mb,
        kernels=(
            _kernel(
                "sweep",
                {PatternKind.STENCIL_HALO: 1.0},
                slices=5,
                ops=28,
                compute=compute,
                writes=writes,
            ),
        ),
        iterations=iterations,
        halo_fraction=halo,
        description=description or "structured stencil with halo exchange",
    )


def _reduction_mix(
    name: str,
    suite: str,
    ctas: int,
    mb: int,
    base: PatternKind,
    base_fraction: float = 0.4,
    reduction_fraction: float = 0.25,
    compute: int = 40,
    iterations: int = 3,
    writes: float = 0.15,
    shared_access: float = 0.5,
    description: str = "",
) -> WorkloadSpec:
    """Compute kernels followed by reduction kernels homed on socket 0.

    The reduction is a *separate* kernel (as in real codes: force kernels
    then an energy/dt reduction), which produces the sustained
    one-direction link phases of Figure 5 rather than smearing reduction
    traffic across the compute kernel.
    """
    stream_fraction = max(0.0, 1.0 - base_fraction)
    mix: dict[PatternKind, float] = {base: base_fraction}
    if stream_fraction > 0:
        mix[PatternKind.PRIVATE_STREAM] = (
            mix.get(PatternKind.PRIVATE_STREAM, 0.0) + stream_fraction
        )
    reduce_slices = max(2, round(4 * reduction_fraction / 0.25))
    return WorkloadSpec(
        name=name,
        suite=suite,
        paper_avg_ctas=ctas,
        paper_footprint_mb=mb,
        kernels=(
            _kernel(
                "compute",
                mix,
                slices=6,
                ops=16,
                compute=compute,
                writes=writes,
            ),
            _kernel(
                # Partial sums accumulate locally (PRIVATE_REUSE) before
                # the final values funnel to the master-homed output.
                "reduce",
                {PatternKind.REDUCTION: 0.6, PatternKind.PRIVATE_REUSE: 0.4},
                cta_fraction=0.6,
                slices=reduce_slices,
                ops=12,
                compute=10,
                writes=writes,
            ),
        ),
        iterations=iterations,
        shared_access_fraction=shared_access,
        init_shared=True,
        description=description or "bulk compute with reduction kernels",
    )


# ---------------------------------------------------------------------------
# the 41 workloads
# ---------------------------------------------------------------------------

def _build_suite() -> dict[str, WorkloadSpec]:
    specs: list[WorkloadSpec] = [
        # -- machine learning ------------------------------------------------
        WorkloadSpec(
            name="ML-GoogLeNet-cudnn-Lev2",
            suite="ML",
            paper_avg_ctas=6272,
            paper_footprint_mb=1205,
            kernels=(
                _kernel(
                    "conv",
                    {PatternKind.SHARED_READ: 0.4, PatternKind.PRIVATE_REUSE: 0.6},
                    slices=6,
                    ops=18,
                    compute=150,
                    writes=0.12,
                ),
            ),
            iterations=2,
            shared_access_fraction=0.3,
            description="convolution layers; weights read-shared, activations private",
        ),
        WorkloadSpec(
            name="ML-AlexNet-cudnn-Lev2",
            suite="ML",
            paper_avg_ctas=1250,
            paper_footprint_mb=832,
            kernels=(
                _kernel(
                    "conv",
                    {PatternKind.SHARED_READ: 0.6, PatternKind.PRIVATE_REUSE: 0.4},
                    slices=6,
                    ops=18,
                    compute=70,
                    writes=0.12,
                ),
            ),
            iterations=2,
            shared_access_fraction=0.55,
            description="early conv layers; large shared filter reads",
        ),
        _private_reuse(
            "ML-OverFeat-cudnn-Lev3",
            "ML",
            1800,
            388,
            compute=160,
            description="mid network layers; activations dominate, high locality",
        ),
        WorkloadSpec(
            name="ML-AlexNet-cudnn-Lev4",
            suite="ML",
            paper_avg_ctas=1014,
            paper_footprint_mb=32,
            kernels=(
                _kernel(
                    "conv",
                    {PatternKind.SHARED_READ: 0.3, PatternKind.PRIVATE_REUSE: 0.7},
                    slices=6,
                    ops=14,
                    compute=120,
                    writes=0.1,
                ),
            ),
            iterations=2,
            shared_access_fraction=0.25,
            description="late conv layers; small footprint, cache resident",
        ),
        _private_reuse(
            "ML-AlexNet-ConvNet2",
            "ML",
            6075,
            97,
            compute=140,
            description="ConvNet2 kernels; private activation tiles",
        ),
        # -- Rodinia ---------------------------------------------------------
        _private_reuse(
            "Rodinia-Backprop",
            "Rodinia",
            4096,
            160,
            compute=90,
            description="layered neural net training sweep",
        ),
        WorkloadSpec(
            name="Rodinia-Euler3D",
            suite="Rodinia",
            paper_avg_ctas=1008,
            paper_footprint_mb=25,
            kernels=(
                _kernel(
                    "flux",
                    {PatternKind.RANDOM_GLOBAL: 0.35, PatternKind.PRIVATE_STREAM: 0.65},
                    slices=6,
                    ops=18,
                    compute=20,
                    writes=0.3,
                ),
            ),
            iterations=3,
            description="unstructured CFD; indirection saturates both link directions",
        ),
        _graph(
            "Rodinia-BFS",
            "Rodinia",
            1954,
            38,
            iterations=4,
            description="level-synchronous BFS; random frontier expansion",
        ),
        WorkloadSpec(
            name="Rodinia-Gaussian",
            suite="Rodinia",
            paper_avg_ctas=2599,
            paper_footprint_mb=78,
            kernels=(
                _kernel(
                    "eliminate",
                    {PatternKind.GATHER_READ: 0.4, PatternKind.PRIVATE_STREAM: 0.6},
                    slices=5,
                    ops=16,
                    compute=30,
                    writes=0.25,
                ),
            ),
            iterations=3,
            init_shared=True,
            description="gaussian elimination; master-homed pivot row broadcast-read",
        ),
        _stencil(
            "Rodinia-Hotspot",
            "Rodinia",
            7396,
            64,
            halo=0.08,
            compute=70,
            description="thermal 2D stencil; thin halos",
        ),
        _private_reuse(
            "Rodinia-Kmeans",
            "Rodinia",
            3249,
            221,
            compute=110,
            description="kmeans; centroids cache-resident per socket",
        ),
        _stencil(
            # Table 2 spells this row "Rodnia-Pathfinder"; we keep the
            # corrected spelling and note the paper label in `description`.
            "Rodinia-Pathfinder",
            "Rodinia",
            4630,
            1570,
            halo=0.06,
            compute=40,
            iterations=2,
            description="dynamic-programming grid sweep (Table 2: 'Rodnia-Pathfinder')",
        ),
        _private_reuse(
            "Rodinia-Srad",
            "Rodinia",
            16384,
            98,
            compute=80,
            description="speckle-reducing anisotropic diffusion; tiled locality",
        ),
        # -- HPC / CORAL ------------------------------------------------------
        _stencil(
            "HPC-SNAP",
            "HPC",
            200,
            744,
            halo=0.1,
            compute=90,
            iterations=2,
            description="Sn transport sweep; few large CTAs",
        ),
        _reduction_mix(
            "HPC-Nekbone-Large",
            "HPC",
            5583,
            294,
            base=PatternKind.SHARED_READ,
            reduction_fraction=0.25,
            compute=45,
            shared_access=0.5,
            description="spectral elements with global dot products",
        ),
        _stencil(
            "HPC-MiniAMR",
            "HPC",
            76033,
            2752,
            halo=0.1,
            compute=50,
            iterations=2,
            description="adaptive mesh refinement stencil blocks",
        ),
        _graph(
            "HPC-MiniContact-Mesh1",
            "HPC",
            250,
            21,
            writes=0.2,
            iterations=3,
            compute=45,
            description="contact detection, small irregular mesh",
        ),
        _graph(
            "HPC-MiniContact-Mesh2",
            "HPC",
            15423,
            257,
            writes=0.2,
            iterations=2,
            compute=40,
            description="contact detection, large irregular mesh",
        ),
        WorkloadSpec(
            name="HPC-Lulesh-Unstruct-Mesh1",
            suite="HPC",
            paper_avg_ctas=435,
            paper_footprint_mb=19,
            kernels=(
                _kernel(
                    "hydro",
                    {PatternKind.RANDOM_GLOBAL: 0.35, PatternKind.PRIVATE_STREAM: 0.65},
                    slices=5,
                    ops=16,
                    compute=25,
                    writes=0.25,
                ),
            ),
            iterations=3,
            description="unstructured shock hydro, small mesh indirection",
        ),
        WorkloadSpec(
            name="HPC-Lulesh-Unstruct-Mesh2",
            suite="HPC",
            paper_avg_ctas=4940,
            paper_footprint_mb=208,
            kernels=(
                _kernel(
                    "hydro",
                    {PatternKind.RANDOM_GLOBAL: 0.35, PatternKind.PRIVATE_STREAM: 0.65},
                    slices=6,
                    ops=18,
                    compute=20,
                    writes=0.3,
                ),
            ),
            iterations=3,
            description="unstructured shock hydro, large mesh indirection",
        ),
        WorkloadSpec(
            name="HPC-AMG",
            suite="HPC",
            paper_avg_ctas=241549,
            paper_footprint_mb=3744,
            kernels=(
                _kernel(
                    "spmv",
                    {
                        PatternKind.RANDOM_GLOBAL: 0.35,
                        PatternKind.PRIVATE_STREAM: 0.5,
                        PatternKind.REDUCTION: 0.15,
                    },
                    slices=6,
                    ops=18,
                    compute=15,
                    writes=0.3,
                ),
            ),
            iterations=3,
            init_shared=True,
            description="algebraic multigrid SpMV; saturates both link directions",
        ),
        _shared_tables(
            "HPC-RSBench",
            "HPC",
            7813,
            19,
            shared_access=0.85,
            compute=30,
            iterations=2,
            description="cross-section lookup tables, master-homed broadcast reads",
        ),
        _reduction_mix(
            "HPC-MCB",
            "HPC",
            5001,
            162,
            base=PatternKind.SHARED_READ,
            reduction_fraction=0.2,
            compute=45,
            shared_access=0.6,
            description="Monte Carlo burnup; table reads plus tally reductions",
        ),
        WorkloadSpec(
            name="HPC-NAMD2.9",
            suite="HPC",
            paper_avg_ctas=3888,
            paper_footprint_mb=88,
            kernels=(
                _kernel(
                    "forces",
                    {PatternKind.SHARED_READ: 0.35, PatternKind.PRIVATE_REUSE: 0.65},
                    slices=6,
                    ops=16,
                    compute=110,
                    writes=0.12,
                ),
            ),
            iterations=2,
            shared_access_fraction=0.35,
            description="molecular dynamics; neighbour lists mostly private",
        ),
        _private_reuse(
            "HPC-RabbitCT",
            "HPC",
            131072,
            524,
            compute=100,
            description="CT back-projection; voxel tiles private",
        ),
        _reduction_mix(
            "HPC-Lulesh",
            "HPC",
            12202,
            578,
            base=PatternKind.RANDOM_GLOBAL,
            reduction_fraction=0.2,
            compute=20,
            writes=0.28,
            description="structured shock hydro; indirection plus dt reduction",
        ),
        _reduction_mix(
            "HPC-CoMD",
            "HPC",
            3588,
            319,
            base=PatternKind.STENCIL_HALO,
            reduction_fraction=0.2,
            compute=45,
            writes=0.2,
            description="classical MD; cell lists with force reductions",
        ),
        _reduction_mix(
            "HPC-CoMD-Wa",
            "HPC",
            13691,
            393,
            base=PatternKind.RANDOM_GLOBAL,
            reduction_fraction=0.25,
            compute=30,
            writes=0.25,
            description="MD warm atoms variant; scattered neighbour access",
        ),
        _reduction_mix(
            "HPC-CoMD-Ta",
            "HPC",
            5724,
            394,
            base=PatternKind.RANDOM_GLOBAL,
            reduction_fraction=0.3,
            compute=20,
            writes=0.3,
            description="MD tantalum variant; heaviest communication",
        ),
        WorkloadSpec(
            name="HPC-HPGMG-UVM",
            suite="HPC",
            paper_avg_ctas=10436,
            paper_footprint_mb=1975,
            kernels=(
                _kernel(
                    "smooth",
                    {PatternKind.STENCIL_HALO: 1.0},
                    cta_fraction=1.0,
                    slices=5,
                    ops=16,
                    compute=25,
                    writes=0.25,
                ),
                _kernel(
                    "restrict",
                    {PatternKind.REDUCTION: 0.5, PatternKind.PRIVATE_REUSE: 0.5},
                    cta_fraction=0.5,
                    slices=4,
                    ops=12,
                    compute=15,
                    writes=0.3,
                ),
                _kernel(
                    "prolong",
                    {PatternKind.GATHER_READ: 0.5, PatternKind.PRIVATE_STREAM: 0.5},
                    cta_fraction=0.5,
                    slices=4,
                    ops=12,
                    compute=15,
                    writes=0.1,
                ),
            ),
            iterations=3,
            halo_fraction=0.2,
            shared_access_fraction=0.8,
            init_shared=True,
            description=(
                "multigrid V-cycles under UVM paging; alternating restrict/"
                "prolong phases flip each link's hot direction (Figure 5)"
            ),
        ),
        WorkloadSpec(
            name="HPC-HPGMG",
            suite="HPC",
            paper_avg_ctas=10506,
            paper_footprint_mb=1571,
            kernels=(
                _kernel(
                    "smooth",
                    {PatternKind.STENCIL_HALO: 1.0},
                    slices=6,
                    ops=16,
                    compute=55,
                    writes=0.2,
                ),
            ),
            iterations=3,
            halo_fraction=0.07,
            description="multigrid with explicit placement; thin halos only",
        ),
        # -- Lonestar ----------------------------------------------------------
        _graph(
            "Lonestar-SP",
            "Lonestar",
            75,
            8,
            iterations=3,
            compute=35,
            description="survey propagation; tiny CTA count, latency bound",
        ),
        _graph(
            "Lonestar-MST-Graph",
            "Lonestar",
            770,
            86,
            writes=0.18,
            iterations=3,
            description="minimum spanning tree on random graph",
        ),
        _graph(
            "Lonestar-MST-Mesh",
            "Lonestar",
            895,
            75,
            writes=0.18,
            iterations=3,
            compute=20,
            description="minimum spanning tree on mesh graph",
        ),
        _graph(
            "Lonestar-SSSP-Wln",
            "Lonestar",
            60,
            21,
            iterations=3,
            compute=40,
            description="SSSP worklist variant; few CTAs, latency bound",
        ),
        _private_reuse(
            "Lonestar-DMR",
            "Lonestar",
            82,
            248,
            compute=220,
            iterations=2,
            description="Delaunay mesh refinement; compute heavy per CTA",
        ),
        _graph(
            "Lonestar-SSSP-Wlc",
            "Lonestar",
            163,
            21,
            iterations=3,
            compute=30,
            description="SSSP worklist-c variant",
        ),
        _graph(
            "Lonestar-SSSP",
            "Lonestar",
            1046,
            38,
            iterations=3,
            compute=30,
            writes=0.15,
            description="topology-driven SSSP",
        ),
        # -- Other -------------------------------------------------------------
        _streaming(
            "Other-Stream-Triad",
            "Other",
            699051,
            3146,
            description="STREAM triad; pure bandwidth, perfect locality",
        ),
        WorkloadSpec(
            name="Other-Optix-Raytracing",
            suite="Other",
            paper_avg_ctas=3072,
            paper_footprint_mb=87,
            kernels=(
                _kernel(
                    "trace",
                    {PatternKind.SHARED_READ: 0.5, PatternKind.PRIVATE_REUSE: 0.5},
                    slices=6,
                    ops=16,
                    compute=90,
                    writes=0.08,
                ),
            ),
            iterations=2,
            shared_access_fraction=0.5,
            description="ray tracing; BVH read-shared across all sockets",
        ),
        _private_reuse(
            "Other-Bitcoin-Crypto",
            "Other",
            60,
            5898,
            compute=2500,
            iterations=1,
            description="hash search; compute bound, negligible traffic",
        ),
    ]
    table = {spec.name: spec for spec in specs}
    if len(table) != len(specs):
        raise WorkloadError("duplicate workload names in suite")
    return table


#: All 41 workloads keyed by name.
SUITE: dict[str, WorkloadSpec] = _build_suite()

#: The nine grey-box workloads (Figure 3: >=99% of theoretical scaling
#: with software-only locality optimization).
GREY_BOX: tuple[str, ...] = (
    "Lonestar-DMR",
    "Rodinia-Srad",
    "Rodinia-Backprop",
    "Other-Stream-Triad",
    "Other-Bitcoin-Crypto",
    "ML-AlexNet-ConvNet2",
    "HPC-RabbitCT",
    "ML-OverFeat-cudnn-Lev3",
    "Rodinia-Kmeans",
)

#: The 32 workloads the microarchitecture studies run on (Figures 6-10).
STUDY_SET: tuple[str, ...] = tuple(
    name for name in SUITE if name not in GREY_BOX
)

#: A budget-bounded cross-section of the suite: one-or-two workloads per
#: behavioural class (shared-read conv, graph indirection, stencil,
#: random+stream CFD, reduction mixes, lookup tables, grey-box private /
#: streaming, multigrid phase flips). This is what CI runs at the
#: ``small`` scale tier (``scripts/run_experiments.py --workloads
#: compact``) so the paper-scale grid stays inside the job budget while
#: still exercising every mechanism; full sweeps use the complete suite.
COMPACT_SET: tuple[str, ...] = (
    "ML-GoogLeNet-cudnn-Lev2",
    "ML-AlexNet-cudnn-Lev2",
    "Rodinia-BFS",
    "Rodinia-Hotspot",
    "Rodinia-Euler3D",
    "Rodinia-Kmeans",
    "HPC-AMG",
    "HPC-RSBench",
    "HPC-CoMD",
    "HPC-HPGMG-UVM",
    "Lonestar-SSSP",
    "Other-Stream-Triad",
    "Other-Optix-Raytracing",
)

assert all(name in SUITE for name in COMPACT_SET)

#: A mid-sized tier between COMPACT_SET and the full suite: every
#: behavioural class with two-or-three representatives plus the full
#: grey-box set. This is what the small-tier CI job runs when enough
#: workers are available (``run_experiments.py --workloads auto``) —
#: the staging point toward the full 41-workload small grid.
EXTENDED_SET: tuple[str, ...] = COMPACT_SET + (
    "ML-AlexNet-cudnn-Lev4",
    "ML-AlexNet-ConvNet2",
    "ML-OverFeat-cudnn-Lev3",
    "Rodinia-Backprop",
    "Rodinia-Gaussian",
    "Rodinia-Pathfinder",
    "Rodinia-Srad",
    "HPC-Lulesh",
    "HPC-MiniContact-Mesh1",
    "HPC-Nekbone-Large",
    "HPC-HPGMG",
    "Lonestar-MST-Graph",
    "Lonestar-SP",
    "Other-Bitcoin-Crypto",
)

assert all(name in SUITE for name in EXTENDED_SET)
assert len(set(EXTENDED_SET)) == len(EXTENDED_SET)

#: The topology-study cross-section: one workload per traffic shape the
#: fabric experiments care about — broadcast-shared conv, random graph
#: frontier, thin-halo stencil, link-saturating SpMV, master-homed
#: lookup tables, and pure streaming. Used by the ``topology``
#: experiment driver and the topology-smoke CI job.
TOPOLOGY_SET: tuple[str, ...] = (
    "ML-GoogLeNet-cudnn-Lev2",
    "Rodinia-BFS",
    "Rodinia-Hotspot",
    "HPC-AMG",
    "HPC-RSBench",
    "Other-Stream-Triad",
)

assert all(name in SUITE for name in TOPOLOGY_SET)


def get_workload(name: str) -> WorkloadSpec:
    """Look up one workload; raises WorkloadError with suggestions."""
    spec = SUITE.get(name)
    if spec is None:
        close = [n for n in SUITE if name.lower() in n.lower()]
        hint = f"; did you mean one of {close}?" if close else ""
        raise WorkloadError(f"unknown workload {name!r}{hint}")
    return spec


def workloads_by_suite(suite: str) -> list[WorkloadSpec]:
    """All workloads of one suite (ML, Rodinia, HPC, Lonestar, Other)."""
    found = [spec for spec in SUITE.values() if spec.suite == suite]
    if not found:
        raise WorkloadError(f"unknown suite {suite!r}")
    return found
