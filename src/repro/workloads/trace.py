"""Trace recording and replay: the trace-driven simulation mode.

The paper's evaluation uses a *trace-driven* simulator: workloads are
captured once and replayed deterministically. This module provides the
same capability for our synthetic (or user-supplied) workloads:

* :func:`record_trace` materializes a workload at a scale into a
  :class:`WorkloadTrace` — the full per-kernel, per-CTA slice streams.
* :func:`save_trace` / :func:`load_trace` persist traces as a compact
  JSON-lines file (one kernel per line) so traces can be shipped,
  diffed, and replayed without the generator that produced them.
* :meth:`WorkloadTrace.build_kernels` turns a trace back into runnable
  :class:`KernelWork` objects.

Replaying a recorded trace is bit-identical to running the generator,
which the test suite asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WorkloadError
from repro.gpu.cta import MemOp, Slice
from repro.runtime.kernel import KernelWork
from repro.workloads.spec import WorkloadScale, WorkloadSpec

#: Trace format version written to every file.
TRACE_VERSION = 1


@dataclass(frozen=True)
class KernelTrace:
    """One kernel's fully materialized CTA streams."""

    name: str
    #: ``ctas[i]`` is CTA i's slice list: [(compute, [(addr, is_write)...])]
    ctas: tuple[tuple[Slice, ...], ...]

    @property
    def n_ctas(self) -> int:
        """Number of CTAs recorded for this kernel."""
        return len(self.ctas)

    def total_ops(self) -> int:
        """Total memory operations across all CTAs."""
        return sum(len(s.ops) for cta in self.ctas for s in cta)


@dataclass(frozen=True)
class WorkloadTrace:
    """A complete recorded workload: ordered kernel traces plus metadata."""

    workload: str
    scale: str
    kernels: tuple[KernelTrace, ...]

    def build_kernels(self) -> list[KernelWork]:
        """Rebuild runnable kernels that replay the recorded streams."""
        works = []
        for kernel in self.kernels:
            works.append(
                KernelWork(
                    name=kernel.name,
                    n_ctas=kernel.n_ctas,
                    build_cta=_replayer(kernel),
                )
            )
        return works

    def total_ops(self) -> int:
        """Total memory operations across the whole trace."""
        return sum(k.total_ops() for k in self.kernels)


def _replayer(kernel: KernelTrace):
    def build(cta_index: int) -> list[Slice]:
        return list(kernel.ctas[cta_index])

    return build


def record_trace(workload: WorkloadSpec, scale: WorkloadScale) -> WorkloadTrace:
    """Materialize every CTA of every kernel of ``workload`` at ``scale``."""
    kernels = []
    for work in workload.build_kernels(scale):
        ctas = tuple(
            tuple(work.build_cta(i)) for i in range(work.n_ctas)
        )
        kernels.append(KernelTrace(name=work.name, ctas=ctas))
    return WorkloadTrace(
        workload=workload.name, scale=scale.name, kernels=tuple(kernels)
    )


# ---------------------------------------------------------------------------
# persistence (JSON lines: header line, then one line per kernel)
# ---------------------------------------------------------------------------

def save_trace(trace: WorkloadTrace, path: str | Path) -> None:
    """Write a trace file (JSON lines, one kernel per line)."""
    path = Path(path)
    with path.open("w") as handle:
        header = {
            "version": TRACE_VERSION,
            "workload": trace.workload,
            "scale": trace.scale,
            "kernels": len(trace.kernels),
        }
        handle.write(json.dumps(header) + "\n")
        for kernel in trace.kernels:
            record = {
                "name": kernel.name,
                "ctas": [
                    [
                        [s.compute_cycles,
                         [[op.addr, int(op.is_write)] for op in s.ops]]
                        for s in cta
                    ]
                    for cta in kernel.ctas
                ],
            }
            handle.write(json.dumps(record) + "\n")


def load_trace(path: str | Path) -> WorkloadTrace:
    """Read a trace file written by :func:`save_trace`."""
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line:
            raise WorkloadError(f"trace file {path} is empty")
        header = json.loads(header_line)
        version = header.get("version")
        if version != TRACE_VERSION:
            raise WorkloadError(
                f"trace file {path} has version {version}, "
                f"expected {TRACE_VERSION}"
            )
        kernels = []
        for line in handle:
            record = json.loads(line)
            ctas = tuple(
                tuple(
                    Slice(
                        compute_cycles=compute,
                        ops=tuple(MemOp(addr, bool(w)) for addr, w in ops),
                    )
                    for compute, ops in cta
                )
                for cta in record["ctas"]
            )
            kernels.append(KernelTrace(name=record["name"], ctas=ctas))
        if len(kernels) != header.get("kernels"):
            raise WorkloadError(
                f"trace file {path} truncated: header promises "
                f"{header.get('kernels')} kernels, found {len(kernels)}"
            )
    return WorkloadTrace(
        workload=header["workload"], scale=header["scale"],
        kernels=tuple(kernels),
    )
