"""Workload and kernel specifications.

A :class:`WorkloadSpec` is the declarative description of one benchmark:
its paper-reported metadata (Table 2's CTA count and memory footprint)
plus the behavioural profile that drives the synthetic trace generator —
pattern mix, compute intensity, write fraction, kernel structure.

A :class:`WorkloadScale` chooses how large the generated traces are.
Scaling down CTA counts and footprints together keeps every behavioural
ratio intact (see DESIGN.md) while letting the full 41-workload sweeps
run in seconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import LINE_SIZE
from repro.errors import WorkloadError
from repro.gpu.cta import MemOp, Slice
from repro.runtime.kernel import KernelWork
from repro.workloads.patterns import (
    PatternGeometry,
    PatternKind,
    Region,
    generate_addresses,
)


@dataclass(frozen=True)
class KernelSpec:
    """One kernel in a workload's repeating sequence.

    ``pattern_mix`` maps each pattern family to the fraction of the
    kernel's slices that use it; fractions must sum to ~1.
    """

    name: str
    cta_fraction: float  # of the workload's scaled CTA budget
    slices_per_cta: int
    ops_per_slice: int
    compute_per_slice: int
    write_fraction: float
    pattern_mix: dict[PatternKind, float]
    #: reduction kernels write into the shared output region
    reduction_write_fraction: float = 0.9

    def __post_init__(self) -> None:
        total = sum(self.pattern_mix.values())
        if not 0.99 <= total <= 1.01:
            raise WorkloadError(
                f"kernel {self.name!r}: pattern mix sums to {total}, expected 1"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(f"kernel {self.name!r}: bad write fraction")


@dataclass(frozen=True)
class WorkloadScale:
    """How large the generated traces are.

    ``cta_cap`` bounds per-kernel CTAs, ``footprint_lines`` the synthetic
    address space, ``ops_scale`` multiplies per-slice burst sizes.
    """

    name: str
    cta_cap: int
    footprint_lines: int
    ops_scale: float = 1.0

    def scaled_ctas(self, paper_ctas: int, fraction: float) -> int:
        """Scaled CTA count for one kernel (never below 2)."""
        scaled = min(paper_ctas, self.cta_cap)
        return max(2, int(scaled * fraction))


#: Scale presets: TINY for unit tests and benchmark defaults, SMALL for
#: the EXPERIMENTS.md numbers, MEDIUM for high-fidelity runs. CTA caps
#: are sized to several *waves* of a scaled 4-socket system (64 resident
#: CTAs at 4 SMs/socket x 4 CTAs/SM) so kernels exhibit the sustained
#: phases the paper's dynamic controllers track.
TINY = WorkloadScale(name="tiny", cta_cap=160, footprint_lines=12288, ops_scale=0.5)
SMALL = WorkloadScale(name="small", cta_cap=384, footprint_lines=24576, ops_scale=0.625)
MEDIUM = WorkloadScale(name="medium", cta_cap=768, footprint_lines=49152, ops_scale=0.75)

SCALES = {scale.name: scale for scale in (TINY, SMALL, MEDIUM)}


@dataclass(frozen=True)
class WorkloadSpec:
    """One of the 41 benchmarks (Table 2 row + behaviour profile)."""

    name: str
    suite: str
    paper_avg_ctas: int
    paper_footprint_mb: int
    kernels: tuple[KernelSpec, ...]
    #: how many times the kernel sequence repeats (phase structure)
    iterations: int = 1
    #: footprint fraction that is the read-shared region
    shared_fraction_of_footprint: float = 0.125
    #: footprint fraction that is the reduction output region
    output_fraction_of_footprint: float = 0.015625
    #: probability a SHARED_READ slice op hits the shared region
    shared_access_fraction: float = 0.5
    #: probability a STENCIL_HALO op strays into the neighbour chunk
    halo_fraction: float = 0.15
    #: prepend a one-CTA init kernel that first-touches the reduction
    #: output region, homing it on socket 0 (the way real applications'
    #: init phases bias page placement). Read-shared tables are left to
    #: first-touch striping — that is the natural UVM outcome — so only
    #: reduction/gather regions become master-homed. This is what creates
    #: the per-GPU asymmetric link phases of Figures 5 and 6.
    init_shared: bool = False
    seed: int = 1234
    description: str = ""

    def __post_init__(self) -> None:
        if not self.kernels:
            raise WorkloadError(f"workload {self.name!r} has no kernels")

    # ------------------------------------------------------------------
    # trace generation
    # ------------------------------------------------------------------
    def build_kernels(self, scale: WorkloadScale) -> list[KernelWork]:
        """Materialize the kernel sequence at ``scale``.

        Returns one :class:`KernelWork` per (iteration, kernel spec) pair;
        every CTA's slices are generated lazily and deterministically.
        """
        geometry = self._geometry(scale)
        works: list[KernelWork] = []
        if self.init_shared:
            works.append(self._init_kernel(geometry))
        for iteration in range(self.iterations):
            for k_idx, kernel in enumerate(self.kernels):
                n_ctas = scale.scaled_ctas(self.paper_avg_ctas, kernel.cta_fraction)
                geo = PatternGeometry(
                    n_ctas=n_ctas,
                    private_region=geometry["private"],
                    shared_region=geometry["shared"],
                    output_region=geometry["output"],
                    halo_fraction=self.halo_fraction,
                    shared_fraction=self.shared_access_fraction,
                )
                works.append(
                    KernelWork(
                        name=f"{self.name}.{kernel.name}.{iteration}",
                        n_ctas=n_ctas,
                        build_cta=self._cta_builder(
                            kernel, geo, scale, iteration * 1000 + k_idx
                        ),
                    )
                )
        return works

    def _init_kernel(self, geometry: dict[str, Region]) -> KernelWork:
        """A one-CTA kernel touching every output-region page once.

        Under contiguous scheduling a single CTA lands on socket 0, so
        first-touch placement homes the reduction output there — exactly
        how real init phases bias page placement for gathered results.
        """
        from repro.config import PAGE_SIZE

        addrs: list[int] = []
        region = geometry["output"]
        page = region.start - (region.start % PAGE_SIZE)
        while page < region.end:
            addrs.append(max(page, region.start))
            page += PAGE_SIZE
        ops = tuple(MemOp(addr, True) for addr in addrs)
        slices = [Slice(compute_cycles=50, ops=ops)]
        return KernelWork(
            name=f"{self.name}.init",
            n_ctas=1,
            build_cta=lambda cta_index: list(slices),
        )

    def _geometry(self, scale: WorkloadScale) -> dict[str, Region]:
        total_lines = max(64, scale.footprint_lines)
        shared_lines = max(8, int(total_lines * self.shared_fraction_of_footprint))
        output_lines = max(4, int(total_lines * self.output_fraction_of_footprint))
        private_lines = max(32, total_lines - shared_lines - output_lines)
        private = Region(0, private_lines * LINE_SIZE)
        shared = Region(private.end, shared_lines * LINE_SIZE)
        output = Region(shared.end, output_lines * LINE_SIZE)
        return {"private": private, "shared": shared, "output": output}

    def _cta_builder(self, kernel: KernelSpec, geo: PatternGeometry,
                     scale: WorkloadScale, kernel_tag: int):
        spec_seed = self.seed

        def build(cta_index: int) -> list[Slice]:
            rng = random.Random(
                spec_seed * 2_654_435_761 + kernel_tag * 40_503 + cta_index
            )
            n_ops = max(1, int(kernel.ops_per_slice * scale.ops_scale))
            # Iterative kernels double-buffer: shift private accesses per
            # invocation so only hot shared regions persist across flushes.
            phase_offset = kernel_tag * 61
            slices: list[Slice] = []
            patterns = _pattern_schedule(kernel, rng)
            for s_idx in range(kernel.slices_per_cta):
                kind = patterns[s_idx % len(patterns)]
                addrs = generate_addresses(
                    kind, geo, cta_index, n_ops, rng, s_idx, phase_offset
                )
                write_frac = (
                    kernel.reduction_write_fraction
                    if kind is PatternKind.REDUCTION
                    else kernel.write_fraction
                )
                ops = tuple(
                    MemOp(addr, rng.random() < write_frac) for addr in addrs
                )
                slices.append(Slice(kernel.compute_per_slice, ops))
            return slices

        return build

    @property
    def total_scaled_ctas(self) -> dict[str, int]:
        """Scaled CTA counts per preset (documentation helper)."""
        return {
            name: sum(
                scale.scaled_ctas(self.paper_avg_ctas, k.cta_fraction)
                for k in self.kernels
            )
            * self.iterations
            for name, scale in SCALES.items()
        }


def _pattern_schedule(kernel: KernelSpec, rng: random.Random) -> list[PatternKind]:
    """Expand the pattern mix into a slice-by-slice schedule.

    Patterns are laid out proportionally and deterministically, with
    REDUCTION patterns placed last (reductions end kernels, Section 4's
    motivating scenario).
    """
    schedule: list[PatternKind] = []
    n = max(1, kernel.slices_per_cta)
    items = sorted(
        kernel.pattern_mix.items(),
        key=lambda item: (item[0] is PatternKind.REDUCTION, item[0].value),
    )
    for kind, fraction in items:
        count = max(1, round(fraction * n)) if fraction > 0 else 0
        schedule.extend([kind] * count)
    if not schedule:
        raise WorkloadError(f"kernel {kernel.name!r}: empty pattern schedule")
    return schedule[:n] if len(schedule) >= n else schedule
