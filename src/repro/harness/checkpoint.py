"""Two-level checkpointing: warmup forking and crash-resumable studies.

Level 1 — **warmup forking** (in-process). A sweep that varies only the
placement/CTA policy re-simulates the identical warmup prefix once per
cell. :func:`warmup_snapshot` runs that prefix once, captures a
:class:`~repro.sim.snapshot.SimSnapshot` at the quiescent inter-kernel
boundary, and :func:`resume_snapshot` branches per-variant systems off
it. Forked runs of the *same* config are byte-identical to cold runs
(the restore overlays every mutable field; see the snapshot module);
forked runs of a *variant* config inherit exactly the page->home table
and placement stats of the prefix — the same facts a cold run of that
variant would have produced only if its policy made identical choices,
so fork mode is a modelling decision, not an optimization, and the
figure suites never use it (they fork only same-config).

Level 2 — **study journal** (on disk). A study directory holds a
checksummed ``manifest.json`` pinning the simulator version, source
digest, and scale, plus an append-only ``journal.jsonl`` where every
grid cell logs a ``start`` line when dispatched and a ``done`` line
(carrying the full serialized result) when finished. Each line is its
own checksummed envelope, so a crash mid-append leaves at most one
corrupt tail line; loading skips (and sidecars) corrupt lines instead
of failing, then compact-rewrites the journal atomically. ``--resume``
seeds every journaled-done cell straight into the experiment context
and re-runs cells that only reached ``start`` — the figures of a
killed-and-resumed study are byte-identical to an uninterrupted one
because each cell's simulation is deterministic and runs either wholly
before or wholly after the crash.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import repro
from repro.config import SystemConfig, config_digest
from repro.core.builder import _memoizing_kernels, build_system
from repro.errors import CheckpointError
from repro.harness.diskcache import (
    ResultDiskCache,
    payload_checksum,
    source_digest,
)
from repro.metrics.export import result_from_json_dict, result_to_json_dict
from repro.metrics.report import RunResult
from repro.sim.snapshot import SimSnapshot
from repro.workloads.spec import WorkloadScale
from repro.workloads.suite import get_workload

#: File names inside a study (checkpoint) directory.
MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"

#: Sidecar collecting raw corrupt journal lines (never re-read).
CORRUPT_SIDECAR = "journal.corrupt"

#: Version of the manifest/journal format; bump on shape changes.
JOURNAL_VERSION = 1


# ---------------------------------------------------------------------------
# Level 1: warmup forking
# ---------------------------------------------------------------------------

def warmup_snapshot(
    config: SystemConfig,
    workload_name: str,
    scale: WorkloadScale,
    pause_after: int = 1,
) -> tuple[SimSnapshot, list]:
    """Run a warmup prefix once and capture it at the kernel boundary.

    Returns ``(snapshot, kernels)``; hand both to
    :func:`resume_snapshot` for each branch. The kernel list carries
    pre-materialized CTA slices (pure functions of workload and scale),
    so branches share traces exactly as consecutive cold runs do.
    Raises :class:`~repro.errors.SnapshotError` when the config is
    snapshot-ineligible or the workload has fewer than two kernels.
    """
    workload = get_workload(workload_name)
    kernels = _memoizing_kernels(workload, scale)
    for work in kernels:
        build = work.build_cta
        for cta_index in range(work.n_ctas):
            build(cta_index)
    system = build_system(config)
    system.run_prefix(kernels, pause_after=pause_after)
    return SimSnapshot.capture(system), kernels


def resume_snapshot(
    snapshot: SimSnapshot,
    config: SystemConfig,
    kernels: list,
    workload_name: str,
) -> RunResult:
    """Branch one run off a captured warmup prefix.

    Builds a fresh system for ``config``, overlays the snapshot (fork
    mode engages automatically when the config digest differs from the
    captured one), and drains the remaining kernels to completion.
    """
    system = build_system(config)
    fork = config_digest(config) != snapshot.config_digest
    launcher_state = snapshot.restore_into(system, fork=fork)
    return system.resume(kernels, launcher_state, workload_name=workload_name)


def forked_results(
    base_config: SystemConfig,
    variant_configs: list[SystemConfig],
    workload_name: str,
    scale: WorkloadScale,
    pause_after: int = 1,
) -> list[RunResult]:
    """One shared warmup, then one branch per variant config.

    The warmup runs under ``base_config``; every entry of
    ``variant_configs`` (which may include ``base_config`` itself)
    resumes from the same captured boundary. Sweeps over policy
    variants pay the warmup once per (fabric, workload) column instead
    of once per cell.
    """
    snapshot, kernels = warmup_snapshot(
        base_config, workload_name, scale, pause_after=pause_after
    )
    return [
        resume_snapshot(snapshot, config, kernels, workload_name)
        for config in variant_configs
    ]


# ---------------------------------------------------------------------------
# Level 2: study journal
# ---------------------------------------------------------------------------

def cell_key(workload: str, scale_name: str, record_timelines: bool,
             config: SystemConfig) -> str:
    """Journal key of one grid cell (the disk cache's entry key).

    Reusing :meth:`ResultDiskCache.entry_key` folds the package version
    and source digest into the key, so a journal line can only ever be
    replayed into a bit-identical simulation setup — the same guarantee
    the result cache makes.
    """
    return ResultDiskCache.entry_key(
        workload, scale_name, record_timelines, config
    )


class StudyJournal:
    """Append-only, checksummed completion record of one study run.

    Open with :meth:`start` (fresh study; truncates any prior journal)
    or :meth:`resume` (verifies the manifest, loads done cells, and
    compact-rewrites the journal). Writers call :meth:`record_start`
    when a cell is dispatched and :meth:`record_done` when its result
    is in; each ``done`` line embeds the full serialized result, so
    resuming never re-simulates a finished cell.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._done: dict[str, dict] = {}
        self._started: set[str] = set()
        #: journal lines dropped during load (crash-truncated tails,
        #: bit rot); their raw text lands in the corrupt sidecar.
        self.corrupt_lines = 0
        self._fh = None

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    @classmethod
    def start(cls, root: str | os.PathLike, scale_name: str,
              study: str) -> "StudyJournal":
        """Begin a fresh study: write the manifest, truncate the journal."""
        journal = cls(root)
        journal.root.mkdir(parents=True, exist_ok=True)
        manifest = journal._manifest_payload(scale_name, study)
        envelope = {
            "v": JOURNAL_VERSION,
            "checksum": payload_checksum(manifest),
            "payload": manifest,
        }
        tmp = journal.root / f"{MANIFEST_NAME}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(envelope, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, journal.root / MANIFEST_NAME)
        journal._fh = open(journal.root / JOURNAL_NAME, "w")
        return journal

    @classmethod
    def resume(cls, root: str | os.PathLike, scale_name: str,
               study: str) -> "StudyJournal":
        """Re-open an interrupted study after verifying its manifest.

        Raises :class:`~repro.errors.CheckpointError` when there is
        nothing to resume or the manifest pins a different simulator
        version, source tree, scale, or study — journaled results from
        a different setup must never seed this one.
        """
        journal = cls(root)
        manifest_path = journal.root / MANIFEST_NAME
        try:
            data = json.loads(manifest_path.read_text())
        except OSError:
            raise CheckpointError(
                f"nothing to resume: no {MANIFEST_NAME} under {journal.root}"
            ) from None
        except ValueError as exc:
            raise CheckpointError(
                f"unreadable study manifest {manifest_path}: {exc}"
            ) from exc
        if (
            not isinstance(data, dict)
            or data.get("checksum") != payload_checksum(data.get("payload"))
        ):
            raise CheckpointError(
                f"study manifest {manifest_path} failed its checksum"
            )
        recorded = data["payload"]
        expected = journal._manifest_payload(scale_name, study)
        for field in ("journal_version", "version", "source_digest",
                      "scale", "study"):
            if recorded.get(field) != expected[field]:
                raise CheckpointError(
                    f"cannot resume: manifest {field}="
                    f"{recorded.get(field)!r} does not match the current "
                    f"run's {expected[field]!r} (journaled results would "
                    "not be reproducible here)"
                )
        journal._load_and_compact()
        return journal

    @staticmethod
    def _manifest_payload(scale_name: str, study: str) -> dict:
        return {
            "journal_version": JOURNAL_VERSION,
            "version": repro.__version__,
            "source_digest": source_digest(),
            "scale": scale_name,
            "study": study,
        }

    def _load_and_compact(self) -> None:
        """Load journal lines, drop corrupt ones, rewrite atomically."""
        path = self.root / JOURNAL_NAME
        valid: list[str] = []
        corrupt: list[str] = []
        try:
            lines = path.read_text().splitlines()
        except OSError:
            lines = []
        for line in lines:
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                payload = data["payload"]
                if data.get("checksum") != payload_checksum(payload):
                    raise ValueError("checksum mismatch")
                kind = payload["kind"]
                key = payload["key"]
            except (ValueError, KeyError, TypeError):
                corrupt.append(line)
                continue
            if kind == "done":
                self._done[key] = payload["result"]
                valid.append(line)
            elif kind == "start":
                self._started.add(key)
                valid.append(line)
            else:
                corrupt.append(line)
        self.corrupt_lines = len(corrupt)
        if corrupt:
            with open(self.root / CORRUPT_SIDECAR, "a") as sidecar:
                for line in corrupt:
                    sidecar.write(line + "\n")
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text("".join(line + "\n" for line in valid))
        os.replace(tmp, path)
        self._fh = open(path, "a")

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _append(self, payload: dict) -> None:
        assert self._fh is not None, "journal is not open"
        envelope = {
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        self._fh.write(
            json.dumps(envelope, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        # Flush through to disk per line: the journal's whole purpose
        # is surviving a SIGKILL between these appends.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_start(self, key: str) -> None:
        """Log that a cell was dispatched (it will re-run on resume)."""
        if key in self._started:
            return
        self._started.add(key)
        self._append({"kind": "start", "key": key})

    def record_done(self, key: str, result: RunResult) -> None:
        """Log a finished cell with its full serialized result."""
        payload = {
            "kind": "done",
            "key": key,
            "result": result_to_json_dict(result),
        }
        self._done[key] = payload["result"]
        self._append(payload)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def done_result(self, key: str) -> RunResult | None:
        """The journaled result of one cell, or None if not finished."""
        payload = self._done.get(key)
        if payload is None:
            return None
        try:
            return result_from_json_dict(payload)
        except (ValueError, KeyError, TypeError):
            # Schema drift would already have failed the manifest's
            # source-digest check; treat defensively as not-done.
            return None

    def stats(self) -> dict:
        """Counters for reports: done/started/corrupt line totals."""
        return {
            "root": str(self.root),
            "done": len(self._done),
            "started": len(self._started),
            "corrupt_lines": self.corrupt_lines,
        }

    def close(self) -> None:
        """Flush and close the journal file handle."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "StudyJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_VERSION",
    "MANIFEST_NAME",
    "StudyJournal",
    "cell_key",
    "forked_results",
    "resume_snapshot",
    "warmup_snapshot",
]
