"""Experiment runner: builds configs, runs workloads, caches results.

Every figure reuses baselines (the single-GPU run, the locality-optimized
4-socket run, the hypothetical big GPUs), so the runner memoizes
RunResults by ``(workload, scale, config fingerprint)`` within one
:class:`ExperimentContext`. A context also pins the scale and the scaled
system size so every figure of one report is internally consistent.

The memo key is *content-addressed*: :func:`repro.config.config_fingerprint`
walks every field of the frozen config dataclass tree, so a config
parameter can never be silently omitted from a run's identity (see
DESIGN.md, "Result caching"). A context may also carry an optional
on-disk cache (:class:`repro.harness.diskcache.ResultDiskCache`) so
results survive across processes and repeated script invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.config import (
    CacheArch,
    CtaPolicy,
    LinkPolicy,
    PlacementPolicy,
    SystemConfig,
    WritePolicy,
    config_fingerprint,
    hypothetical_config,
    scaled_config,
    single_gpu_config,
)
from repro.core.builder import run_workload_on
from repro.locality.spec import CtaSpec, PlacementSpec
from repro.metrics.report import RunResult
from repro.topology.spec import build_topology
from repro.workloads.spec import SMALL, WorkloadScale
from repro.workloads.suite import get_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.diskcache import ResultDiskCache


@dataclass
class ExperimentContext:
    """Shared state for one report: base config, scale, result cache."""

    n_sockets: int = 4
    sms_per_socket: int = 4
    scale: WorkloadScale = SMALL
    record_timelines: bool = False
    #: optional cross-process result cache (None = in-memory only).
    disk_cache: "ResultDiskCache | None" = None
    _cache: dict[tuple, RunResult] = field(default_factory=dict)

    def base_config(self, n_sockets: int | None = None) -> SystemConfig:
        """The locality-optimized NUMA baseline (Section 3, mem-side L2)."""
        return scaled_config(
            n_sockets=n_sockets if n_sockets is not None else self.n_sockets,
            sms_per_socket=self.sms_per_socket,
        )

    # ------------------------------------------------------------------
    # canonical configurations
    # ------------------------------------------------------------------
    def config_single_gpu(self) -> SystemConfig:
        """One socket with the same per-socket resources."""
        return single_gpu_config(self.base_config())

    def config_hypothetical(self, factor: int) -> SystemConfig:
        """The unbuildable ``factor``-x larger single GPU."""
        return hypothetical_config(self.base_config(), factor)

    def config_traditional(self) -> SystemConfig:
        """Traditional single-GPU policies on the NUMA system (Fig 3 green)."""
        return replace(
            self.base_config(),
            cta_policy=CtaPolicy.INTERLEAVED,
            placement=PlacementPolicy.FINE_INTERLEAVE,
        )

    def config_locality(self, n_sockets: int | None = None) -> SystemConfig:
        """Locality-optimized runtime, mem-side L2, static links (Fig 3 blue)."""
        return self.base_config(n_sockets)

    def config_cache(self, arch: CacheArch) -> SystemConfig:
        """Locality runtime with one of the four Figure 7 organizations."""
        return replace(self.base_config(), cache_arch=arch)

    def config_dynamic_link(self, sample_time: int | None = None,
                            switch_time: int | None = None) -> SystemConfig:
        """Locality runtime with the Section 4 dynamic links."""
        config = replace(self.base_config(), link_policy=LinkPolicy.DYNAMIC)
        controllers = config.controllers
        if sample_time is not None:
            controllers = replace(controllers, link_sample_time=sample_time)
        if switch_time is not None:
            controllers = replace(controllers, link_switch_time=switch_time)
        return replace(config, controllers=controllers)

    def config_doubled_link(self) -> SystemConfig:
        """Figure 6's red upper bound: statically doubled link bandwidth."""
        return replace(self.base_config(), link_policy=LinkPolicy.DOUBLED)

    def config_combined(self, n_sockets: int | None = None) -> SystemConfig:
        """The full NUMA-aware GPU: dynamic links + NUMA-aware caches."""
        return replace(
            self.base_config(n_sockets),
            cache_arch=CacheArch.NUMA_AWARE,
            link_policy=LinkPolicy.DYNAMIC,
        )

    def config_topology(
        self,
        kind: str,
        n_sockets: int | None = None,
        combined: bool = False,
    ) -> SystemConfig:
        """Locality runtime on a named multi-hop topology.

        ``kind`` is a :data:`repro.topology.spec.BUILDERS` name; the
        spec's per-edge links reuse the context's scaled ``link`` so
        bandwidth ratios match every other configuration at this scale.
        ``combined=True`` additionally applies the full NUMA-aware
        design (dynamic per-edge lanes + NUMA-aware caches) on top of
        the topology.
        """
        base = (
            self.config_combined(n_sockets) if combined
            else self.base_config(n_sockets)
        )
        return replace(
            base, topology=build_topology(kind, base.n_sockets, base.link)
        )

    def config_locality_policy(
        self,
        placement: str = "first_touch",
        cta: str = "contiguous",
        kind: str | None = None,
        n_sockets: int | None = None,
        combined: bool = False,
        **placement_params,
    ) -> SystemConfig:
        """Locality runtime with explicit placement + CTA policy specs.

        ``placement`` / ``cta`` are :mod:`repro.locality` registry kinds;
        ``kind`` optionally puts the system on a named multi-hop
        topology (as :meth:`config_topology`); ``placement_params``
        forwards tuning knobs (``touch_window``,
        ``migration_threshold``, ``max_migrations_per_page``) to the
        :class:`~repro.locality.spec.PlacementSpec`. The distance-blind
        baseline of a locality experiment is the same fabric with *no*
        specs (plain :meth:`config_topology` / :meth:`base_config`), so
        baseline runs share the result cache with the topology sweep.
        """
        if kind is not None:
            base = self.config_topology(kind, n_sockets, combined=combined)
        elif combined:
            base = self.config_combined(n_sockets)
        else:
            base = self.base_config(n_sockets)
        return replace(
            base,
            placement_spec=PlacementSpec(kind=placement, **placement_params),
            cta_spec=CtaSpec(kind=cta),
        )

    def config_no_invalidations(self) -> SystemConfig:
        """Figure 9's hypothetical: coherence invalidations ignored."""
        return replace(
            self.config_cache(CacheArch.NUMA_AWARE),
            coherence_invalidations=False,
        )

    def config_write_through(self) -> SystemConfig:
        """Section 5.2 sensitivity: write-through L2."""
        return replace(
            self.config_cache(CacheArch.NUMA_AWARE),
            l2_write_policy=WritePolicy.WRITE_THROUGH,
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def cache_key(self, workload_name: str, config: SystemConfig,
                  record_timelines: bool | None = None) -> tuple:
        """The memoization key one run is stored under."""
        record = (
            self.record_timelines if record_timelines is None else record_timelines
        )
        return (workload_name, self.scale.name, record,
                config_fingerprint(config))

    def is_cached(self, key: tuple) -> bool:
        """Whether a :meth:`cache_key` is already memoized in this context."""
        return key in self._cache

    def seed_cache(self, workload_name: str, config: SystemConfig,
                   record_timelines: bool, result: RunResult) -> None:
        """Insert an externally computed result (parallel-runner merge)."""
        self._cache[
            self.cache_key(workload_name, config, record_timelines)
        ] = result

    def run(self, workload_name: str, config: SystemConfig,
            record_timelines: bool | None = None) -> RunResult:
        """Run (or fetch from cache) one workload under one config."""
        record = (
            self.record_timelines if record_timelines is None else record_timelines
        )
        key = self.cache_key(workload_name, config, record)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.disk_cache is not None:
            stored = self.disk_cache.get(
                workload_name, self.scale.name, record, config
            )
            if stored is not None:
                self._cache[key] = stored
                return stored
        workload = get_workload(workload_name)
        result = run_workload_on(
            config, workload, self.scale, record_timelines=record
        )
        self._cache[key] = result
        if self.disk_cache is not None:
            self.disk_cache.put(
                workload_name, self.scale.name, record, config, result
            )
        return result

    def speedup(self, workload_name: str, config: SystemConfig,
                baseline: SystemConfig) -> float:
        """Speedup of ``config`` over ``baseline`` for one workload."""
        return self.run(workload_name, config).speedup_over(
            self.run(workload_name, baseline)
        )

    @property
    def cached_runs(self) -> int:
        """Number of distinct simulations run so far."""
        return len(self._cache)

    def cache_stats(self) -> dict | None:
        """Disk-cache health counters for failure reports (None = no cache).

        Exposes hits/misses plus the storage-hardening counters
        (``corrupt`` quarantines and degraded ``put_errors``) so an
        end-of-run :class:`~repro.harness.supervisor.FailureReport` can
        account for injected or real storage faults.
        """
        if self.disk_cache is None:
            return None
        return self.disk_cache.stats()
