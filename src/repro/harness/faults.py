"""Deterministic fault injection for the experiment harness.

Chaos testing only earns its keep here if it composes with the repo's
golden/bit-identical contract: a chaos run must *recover to exactly the
same results* as a fault-free run, byte for byte. That rules out any
injection keyed on wall-clock time, scheduling order, or shared RNG
state. Instead every fault decision is a pure function of

    (plan seed, fault kind, stable task/entry key, attempt number)

hashed through SHA-256 — the same derivation the disk cache uses for
entry keys. Two processes (or a worker and its respawned replacement,
or a serial ``--jobs 1`` run and a parallel ``--jobs 8`` run) therefore
agree exactly on which faults fire, without sharing any state beyond
the plan spec itself.

The plan travels as a compact ``key=value;key=value`` spec string in the
``REPRO_FAULT_PLAN`` environment variable. Worker processes inherit the
parent's environment, so faults fire *inside real workers* — exercising
the supervisor's crash/hang/retry machinery end to end — without the
simulation code knowing fault injection exists.

Spec grammar (all keys optional; unknown keys are an error)::

    seed=42            # integer seed folded into every draw (default 0)
    crash=0.1          # P(worker crash) per (task, faulted attempt)
    hang=0.05          # P(hang) — sleeps hang_seconds, for timeout kills
    transient=0.2      # P(raise InjectedTransientError)
    corrupt=0.1        # P(garble a disk-cache entry after a put)
    enospc=0.05        # P(disk-cache put raises OSError(ENOSPC))
    crash_nth=0,5      # additionally crash the tasks at these plan indices
    hang_nth=3         # same, for hangs
    transient_nth=1    # same, for transient exceptions
    hang_seconds=30    # how long an injected hang sleeps (default 3600)
    faulted_attempts=1 # attempts 0..N-1 may fault; later retries run clean

``faulted_attempts`` (default 1) is what makes recovery guaranteed: a
task selected for a fault fails on its first attempt(s) and then runs
clean, so any retry budget >= ``faulted_attempts`` converges to the
fault-free result. Task-level fault kinds are mutually exclusive per
attempt with fixed precedence crash > hang > transient, so a plan's
expected attempt transcript is computable in closed form — the chaos
tests assert the supervisor's transcript matches it *exactly*.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from dataclasses import dataclass, field, fields, replace
from functools import lru_cache

from repro.errors import ReproError

#: Environment variable carrying the active fault-plan spec string.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code used by an injected worker crash (distinguishable from a
#: genuine interpreter death in attempt transcripts).
INJECTED_CRASH_EXIT = 73

#: Task-level fault kinds, in precedence order (first match wins).
TASK_FAULT_KINDS = ("crash", "hang", "transient")

#: Cache-level fault kinds (keyed by disk-cache entry, not by attempt).
CACHE_FAULT_KINDS = ("corrupt", "enospc")


class FaultPlanError(ReproError):
    """A ``REPRO_FAULT_PLAN`` spec string could not be parsed."""


class InjectedTransientError(ReproError):
    """A transient failure injected by the active fault plan."""


class InjectedCrash(ReproError):
    """In-process stand-in for a worker crash (serial execution path).

    A pool worker selected for a crash fault dies with
    ``os._exit(INJECTED_CRASH_EXIT)`` — the real thing. The serial path
    runs tasks in the supervisor's own process, where exiting would kill
    the harness itself, so the same plan decision surfaces as this
    exception instead; the serial supervisor classifies it as a
    ``crash`` outcome so both paths produce identical transcripts.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic chaos schedule (parsed spec string)."""

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    transient: float = 0.0
    corrupt: float = 0.0
    enospc: float = 0.0
    crash_nth: tuple[int, ...] = field(default_factory=tuple)
    hang_nth: tuple[int, ...] = field(default_factory=tuple)
    transient_nth: tuple[int, ...] = field(default_factory=tuple)
    hang_seconds: float = 3600.0
    faulted_attempts: int = 1

    # ------------------------------------------------------------------
    # deterministic draws
    # ------------------------------------------------------------------
    def _uniform(self, kind: str, key: str, attempt: int) -> float:
        """A stable uniform in [0, 1) for one (kind, key, attempt) cell."""
        material = f"{self.seed}|{kind}|{key}|{attempt}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def task_fault(self, key: str, index: int, attempt: int) -> str | None:
        """Which fault (if any) fires for this task attempt.

        ``key`` is the stable task key (workload + scale + config
        digest), ``index`` the task's position in the deterministic plan
        order (for the ``*_nth`` directives), ``attempt`` the 0-based
        attempt number. Pure function: callers (injection sites *and*
        tests) compute identical answers in any process.
        """
        if attempt >= self.faulted_attempts:
            return None
        for kind in TASK_FAULT_KINDS:
            if index in getattr(self, f"{kind}_nth"):
                return kind
            rate = getattr(self, kind)
            if rate > 0.0 and self._uniform(kind, key, attempt) < rate:
                return kind
        return None

    def cache_fault(self, kind: str, entry_key: str) -> bool:
        """Whether a storage fault fires for one disk-cache entry.

        Keyed by entry, not attempt: a corrupt entry stays corrupt until
        quarantined, which is exactly the failure mode being modelled.
        """
        if kind not in CACHE_FAULT_KINDS:
            raise ValueError(f"unknown cache fault kind {kind!r}")
        rate = getattr(self, kind)
        return rate > 0.0 and self._uniform(kind, entry_key, 0) < rate

    # ------------------------------------------------------------------
    # spec round-trip
    # ------------------------------------------------------------------
    def to_spec(self) -> str:
        """The compact spec string (inverse of :func:`parse_fault_plan`)."""
        default = FaultPlan()
        parts: list[str] = []
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value == getattr(default, spec_field.name):
                continue
            if isinstance(value, tuple):
                rendered = ",".join(str(v) for v in value)
            else:
                rendered = repr(value) if isinstance(value, float) else str(value)
            parts.append(f"{spec_field.name}={rendered}")
        return ";".join(parts)

    def activate(self) -> None:
        """Export this plan to ``REPRO_FAULT_PLAN`` for child processes."""
        os.environ[FAULT_PLAN_ENV] = self.to_spec()


_INT_KEYS = frozenset({"seed", "faulted_attempts"})
_FLOAT_KEYS = frozenset(
    {"crash", "hang", "transient", "corrupt", "enospc", "hang_seconds"}
)
_NTH_KEYS = frozenset({"crash_nth", "hang_nth", "transient_nth"})


@lru_cache(maxsize=32)
def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a ``key=value;key=value`` spec string into a plan."""
    plan = FaultPlan()
    for raw in spec.split(";"):
        part = raw.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not value:
            raise FaultPlanError(
                f"fault-plan entry {part!r} is not of the form key=value"
            )
        try:
            if key in _INT_KEYS:
                plan = replace(plan, **{key: int(value)})
            elif key in _FLOAT_KEYS:
                parsed = float(value)
                if key != "hang_seconds" and not 0.0 <= parsed <= 1.0:
                    raise FaultPlanError(
                        f"fault rate {key}={value} outside [0, 1]"
                    )
                plan = replace(plan, **{key: parsed})
            elif key in _NTH_KEYS:
                indices = tuple(int(v) for v in value.split(",") if v.strip())
                plan = replace(plan, **{key: indices})
            else:
                raise FaultPlanError(f"unknown fault-plan key {key!r}")
        except ValueError as error:
            raise FaultPlanError(
                f"bad fault-plan value {part!r}: {error}"
            ) from None
    if plan.faulted_attempts < 1:
        raise FaultPlanError("faulted_attempts must be >= 1")
    return plan


def active_plan() -> FaultPlan | None:
    """The plan from ``REPRO_FAULT_PLAN``, or None when chaos is off.

    Read from the environment on every call (it is only consulted at
    task/cache-operation granularity, never inside the simulation hot
    path), so tests can activate and clear plans without process-global
    bookkeeping — and forked workers see exactly the parent's plan.
    """
    spec = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not spec:
        return None
    return parse_fault_plan(spec)


def inject_task_fault(key: str, index: int, attempt: int,
                      in_process: bool = False) -> None:
    """Fire the planned fault (if any) for one task attempt.

    Called at the top of every supervised task attempt — inside the
    worker process on the parallel path (``in_process=False``) and in
    the supervisor's own process on the serial path. Crash faults kill
    the current process with :data:`INJECTED_CRASH_EXIT` in a worker but
    raise :class:`InjectedCrash` in-process; hang faults sleep
    ``hang_seconds`` (the per-task timeout is expected to kill them);
    transient faults raise :class:`InjectedTransientError`.
    """
    plan = active_plan()
    if plan is None:
        return
    kind = plan.task_fault(key, index, attempt)
    if kind is None:
        return
    if kind == "crash":
        if in_process:
            raise InjectedCrash(
                f"injected crash: task {key} (index {index}) attempt {attempt}"
            )
        os._exit(INJECTED_CRASH_EXIT)
    elif kind == "hang":
        # Not a busy loop: a killed sleep leaves no state behind, and a
        # SIGALRM-based serial timeout can interrupt it cleanly.
        time.sleep(plan.hang_seconds)
    else:
        raise InjectedTransientError(
            f"injected transient fault: task {key} (index {index}) "
            f"attempt {attempt}"
        )


def inject_cache_put_fault(entry_key: str) -> None:
    """Raise an injected ENOSPC for this entry if the plan says so."""
    plan = active_plan()
    if plan is not None and plan.cache_fault("enospc", entry_key):
        raise OSError(
            errno.ENOSPC,
            f"injected: no space left on device (entry {entry_key[:12]})",
        )


def corrupt_cache_entry_planned(entry_key: str) -> bool:
    """Whether the plan garbles this entry's bytes after a put."""
    plan = active_plan()
    return plan is not None and plan.cache_fault("corrupt", entry_key)


__all__ = [
    "CACHE_FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultPlanError",
    "INJECTED_CRASH_EXIT",
    "InjectedCrash",
    "InjectedTransientError",
    "TASK_FAULT_KINDS",
    "active_plan",
    "corrupt_cache_entry_planned",
    "inject_cache_put_fault",
    "inject_task_fault",
    "parse_fault_plan",
]
