"""Experiment harness: runner, per-figure drivers, formatting."""

from repro.harness.experiments import (
    figure2,
    figure3,
    figure5,
    figure6,
    figure8,
    figure9,
    figure10,
    figure11,
    locality_sweep,
    power_analysis,
    run_all,
    switch_time_sensitivity,
    table1,
    table2,
    writeback_sensitivity,
)
from repro.harness.diskcache import ResultDiskCache
from repro.harness.faults import FaultPlan, parse_fault_plan
from repro.harness.formatting import format_speedup_bars, format_table
from repro.harness.parallel import (
    ParallelRunner,
    RunTask,
    capture_plan,
    make_context,
    resolve_jobs,
)
from repro.harness.runner import ExperimentContext
from repro.harness.supervisor import FailureReport, RetryPolicy

__all__ = [
    "figure2",
    "figure3",
    "figure5",
    "figure6",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "locality_sweep",
    "power_analysis",
    "run_all",
    "switch_time_sensitivity",
    "table1",
    "table2",
    "writeback_sensitivity",
    "format_speedup_bars",
    "format_table",
    "ExperimentContext",
    "FailureReport",
    "FaultPlan",
    "ParallelRunner",
    "ResultDiskCache",
    "RetryPolicy",
    "RunTask",
    "capture_plan",
    "make_context",
    "parse_fault_plan",
    "resolve_jobs",
]
