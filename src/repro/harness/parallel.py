"""Parallel experiment execution over a process pool.

The experiment drivers in :mod:`repro.harness.experiments` are pure grids:
the set of ``(workload, config, record_timelines)`` simulations they
request never depends on simulation *results*. That makes a two-phase
strategy exact rather than heuristic:

1. **Capture** — run the drivers against a :class:`PlanningContext`, a
   context whose ``run()`` records the requested simulation and returns a
   stub result. This enumerates the full simulation grid without
   maintaining a parallel copy of each driver's loop (which could drift —
   the same bug class the content-addressed config key eliminates).
2. **Execute** — fan the captured, deduplicated grid out over the
   supervised worker pool (:mod:`repro.harness.supervisor`); each worker
   builds a fresh system, runs one simulation, and returns a picklable
   :class:`RunResult`. The parent merges results into the shared
   :class:`ExperimentContext` memo cache (and the on-disk cache, if one
   is attached). The supervisor isolates per-task failures: a crashed,
   hung, or excepting worker marks only its own cell failed, is retried
   with exponential backoff under a bounded attempt budget, and every
   non-clean run ends with a structured
   :class:`~repro.harness.supervisor.FailureReport`.

Afterwards the drivers are run for real and hit a warm cache, so a
parallel invocation produces **bit-identical** figures to a serial one:
every simulation is single-threaded and deterministic for a given
(workload, config, scale) triple, and nothing about pool scheduling can
reorder events *inside* a simulation (see DESIGN.md, "Determinism
contract"). The serial (``jobs <= 1``) path runs the same supervision
state machine in-process, so ``--jobs 1`` and ``--jobs N`` report
failures identically.

Worker count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial). ``jobs=0`` means
"one worker per CPU".
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.config import SystemConfig
from repro.core.builder import run_workload_on
from repro.errors import ExecutionError
from repro.harness.runner import ExperimentContext
from repro.metrics.report import RunResult
from repro.sim.instrumentation import SIM_TALLY
from repro.workloads.spec import WorkloadScale
from repro.workloads.suite import get_workload

#: Environment variable providing the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: One experiment driver: a callable taking a context (figure3, power, ...).
Driver = Callable[[ExperimentContext], object]


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from ``jobs``, else ``REPRO_JOBS``, else 1 (serial)."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(f"{JOBS_ENV}={env!r} is not an integer") from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class RunTask:
    """One simulation of the experiment grid (picklable)."""

    workload: str
    config: SystemConfig
    record_timelines: bool = False


def _execute_task(task: RunTask, scale: WorkloadScale) -> RunResult:
    """Worker entry point: one fresh, deterministic simulation."""
    workload = get_workload(task.workload)
    return run_workload_on(
        task.config, workload, scale,
        record_timelines=task.record_timelines,
    )


def _execute_measured(
    task: RunTask, scale: WorkloadScale,
) -> "tuple[RunResult, dict]":
    """:func:`_execute_task` plus a per-task harness telemetry sample.

    The sample carries the task's wall-clock span (``time.monotonic()``,
    comparable across processes on Linux) and the
    :data:`~repro.sim.instrumentation.SIM_TALLY` delta the task produced
    in *this* process. Pool workers ship it back over the supervisor's
    result pipe so the parent can absorb worker-side run totals and
    build the study's worker-utilization timeline (see
    :mod:`repro.harness.supervisor` and DESIGN.md, "Observability
    contract").
    """
    before = (SIM_TALLY.runs, SIM_TALLY.events, SIM_TALLY.cycles,
              SIM_TALLY.wall_seconds)
    t_start = time.monotonic()
    result = _execute_task(task, scale)
    t_end = time.monotonic()
    sample = {
        "t_start": t_start,
        "t_end": t_end,
        "runs": SIM_TALLY.runs - before[0],
        "events": SIM_TALLY.events - before[1],
        "cycles": SIM_TALLY.cycles - before[2],
        "sim_wall_seconds": SIM_TALLY.wall_seconds - before[3],
    }
    return result, sample


def _stub_result(workload_name: str, config: SystemConfig) -> RunResult:
    """A placeholder result for plan capture (never rendered)."""
    return RunResult(
        workload=workload_name,
        config_label="<planning>",
        cycles=1,
        n_sockets=config.n_sockets,
        sockets=[],
        switch_bytes=0,
        migrations=0,
        kernels=1,
        kernel_launch_times=[0],
    )


@dataclass
class PlanningContext(ExperimentContext):
    """A context that records requested simulations instead of running them.

    Drivers executed against it behave normally (their arithmetic sees
    stub results) while every distinct ``run()`` request is appended to
    :attr:`tasks` exactly once, in first-request order.
    """

    tasks: list[RunTask] = field(default_factory=list)

    @classmethod
    def from_context(cls, ctx: ExperimentContext) -> "PlanningContext":
        return cls(
            n_sockets=ctx.n_sockets,
            sms_per_socket=ctx.sms_per_socket,
            scale=ctx.scale,
            record_timelines=ctx.record_timelines,
        )

    def run(self, workload_name: str, config: SystemConfig,
            record_timelines: bool | None = None) -> RunResult:
        record = (
            self.record_timelines if record_timelines is None
            else record_timelines
        )
        key = self.cache_key(workload_name, config, record)
        cached = self._cache.get(key)
        if cached is None:
            cached = _stub_result(workload_name, config)
            self._cache[key] = cached
            self.tasks.append(
                RunTask(workload_name, config, record_timelines=record)
            )
        return cached


def capture_plan(ctx: ExperimentContext,
                 drivers: Iterable[Driver]) -> list[RunTask]:
    """Enumerate the deduplicated simulation grid the drivers will need.

    Tasks already present in ``ctx``'s memo cache are still included —
    :meth:`ParallelRunner.prewarm` is responsible for skipping them, so a
    captured plan is reusable across contexts.
    """
    planner = PlanningContext.from_context(ctx)
    for driver in drivers:
        driver(planner)
    return planner.tasks


class ParallelRunner:
    """Fans a simulation grid out over processes into a context's cache.

    Execution is supervised (:mod:`repro.harness.supervisor`): per-task
    failures are retried with exponential backoff under ``policy``, hung
    workers are killed after ``policy.task_timeout``, and the attempt
    transcripts of every non-clean task land in :attr:`report`. With
    ``policy.keep_going`` (the default) a permanently failing task marks
    only its own cell failed; with fail-fast the first exhausted task
    raises :class:`~repro.errors.ExecutionError` carrying the report.
    """

    def __init__(self, ctx: ExperimentContext, jobs: int | None = None,
                 policy: "RetryPolicy | None" = None,
                 journal: "StudyJournal | None" = None) -> None:
        from repro.harness.supervisor import RetryPolicy

        self.ctx = ctx
        self.jobs = resolve_jobs(jobs)
        self.policy = policy if policy is not None else RetryPolicy()
        #: optional study journal (crash-resumable suites; see
        #: :mod:`repro.harness.checkpoint`).
        self.journal = journal
        #: simulations actually executed by the last prewarm call.
        self.executed = 0
        #: tasks satisfied from the memo or disk cache instead.
        self.skipped = 0
        #: failure report of the last prewarm call (None before any).
        self.report: "FailureReport | None" = None

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _journal_key(self, task: RunTask) -> str:
        from repro.harness.checkpoint import cell_key

        return cell_key(task.workload, self.ctx.scale.name,
                        task.record_timelines, task.config)

    def _missing(self, tasks: Sequence[RunTask]) -> list[RunTask]:
        """Deduplicate and drop tasks the caches or journal already cover.

        Missing tasks are logged to the study journal (when one is
        attached) as ``start`` lines before execution, so a killed run
        knows on resume which cells were in flight and must re-run.
        """
        ctx = self.ctx
        missing: list[RunTask] = []
        seen: set[tuple] = set()
        for task in tasks:
            key = ctx.cache_key(task.workload, task.config,
                                task.record_timelines)
            if key in seen:
                continue
            seen.add(key)
            if ctx.is_cached(key):
                self.skipped += 1
                continue
            if self.journal is not None:
                stored = self.journal.done_result(self._journal_key(task))
                if stored is not None:
                    ctx.seed_cache(task.workload, task.config,
                                   task.record_timelines, stored)
                    self.skipped += 1
                    continue
            if ctx.disk_cache is not None:
                stored = ctx.disk_cache.get(
                    task.workload, ctx.scale.name,
                    task.record_timelines, task.config,
                )
                if stored is not None:
                    ctx.seed_cache(task.workload, task.config,
                                   task.record_timelines, stored)
                    self.skipped += 1
                    continue
            if self.journal is not None:
                self.journal.record_start(self._journal_key(task))
            missing.append(task)
        return missing

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def prewarm(self, tasks: Sequence[RunTask],
                progress: Callable[[int, int], None] | None = None) -> int:
        """Run every uncached task under supervision; merge into the context.

        Returns the number of simulations actually executed. ``progress``
        (if given) is called as ``progress(done, total)`` after each
        completed simulation. The full attempt accounting of the run is
        left in :attr:`report`; under a fail-fast policy an exhausted
        task raises :class:`~repro.errors.ExecutionError` instead.
        """
        from repro.harness.supervisor import run_supervised

        self.executed = 0
        self.skipped = 0
        self.report = None
        ctx = self.ctx
        missing = self._missing(tasks)

        def merge(task: RunTask, result: RunResult) -> None:
            ctx.seed_cache(task.workload, task.config,
                           task.record_timelines, result)
            if self.journal is not None:
                self.journal.record_done(self._journal_key(task), result)
            if ctx.disk_cache is not None:
                ctx.disk_cache.put(
                    task.workload, ctx.scale.name,
                    task.record_timelines, task.config, result,
                )

        report = run_supervised(
            missing, ctx.scale, self.jobs, self.policy, merge,
            progress=progress,
        )
        report.cache = ctx.cache_stats()
        self.report = report
        self.executed = report.executed
        if not report.ok() and not self.policy.keep_going:
            raise ExecutionError(report)
        return self.executed

    def prewarm_experiments(
        self, drivers: Iterable[Driver],
        progress: Callable[[int, int], None] | None = None,
    ) -> int:
        """Capture the drivers' grid, then :meth:`prewarm` it."""
        return self.prewarm(capture_plan(self.ctx, drivers), progress=progress)


def make_context(
    scale: WorkloadScale,
    cache_dir: "str | os.PathLike | None" = None,
    **kwargs,
) -> ExperimentContext:
    """An :class:`ExperimentContext`, optionally with a disk cache attached.

    ``cache_dir=None`` disables persistence; any other value (including
    ``""``, meaning "the default location") attaches a
    :class:`~repro.harness.diskcache.ResultDiskCache`.
    """
    from repro.harness.diskcache import ResultDiskCache

    disk = None
    if cache_dir is not None:
        disk = ResultDiskCache(cache_dir if str(cache_dir) else None)
    return ExperimentContext(scale=scale, disk_cache=disk, **kwargs)


__all__ = [
    "JOBS_ENV",
    "ParallelRunner",
    "PlanningContext",
    "RunTask",
    "capture_plan",
    "make_context",
    "resolve_jobs",
]
