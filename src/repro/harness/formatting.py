"""ASCII rendering of experiment results (paper-style rows).

Every experiment driver returns structured data *and* can print a compact
table whose rows mirror what the paper's figure shows, so benchmark logs
double as the reproduction record.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_speedup_bars(
    pairs: Sequence[tuple[str, float]], width: int = 40, max_value: float | None = None
) -> str:
    """A quick horizontal bar chart for terminal output.

    >>> print(format_speedup_bars([("a", 2.0), ("b", 1.0)], width=4))
    a 2.000 ####
    b 1.000 ##
    """
    if not pairs:
        return ""
    peak = max_value if max_value is not None else max(v for _, v in pairs)
    peak = max(peak, 1e-9)
    name_width = max(len(name) for name, _ in pairs)
    lines = []
    for name, value in pairs:
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{name.ljust(name_width)} {value:.3f} {bar}")
    return "\n".join(lines)
