"""Experiment drivers: one function per table/figure of the paper.

Each function takes an :class:`ExperimentContext`, runs the simulations it
needs (results are memoized on the context), and returns a small result
dataclass with a ``render()`` method that prints the same rows the paper's
figure shows. The benchmarks in ``benchmarks/`` are thin wrappers over
these functions; EXPERIMENTS.md records paper-vs-measured for each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PASCAL_SM_COUNT, CacheArch
from repro.harness.formatting import format_table
from repro.harness.runner import ExperimentContext
from repro.metrics.report import arithmetic_mean, geometric_mean
from repro.metrics.timeline import bin_series
from repro.power.interconnect_power import estimate_power
from repro.topology.routing import bisection_bandwidth, bisection_cut
from repro.workloads.suite import GREY_BOX, STUDY_SET, SUITE, TOPOLOGY_SET


# ---------------------------------------------------------------------------
# Table 1 / Table 2
# ---------------------------------------------------------------------------

@dataclass
class TableResult:
    """A rendered paper table."""

    title: str
    headers: list[str]
    rows: list[list[object]]

    def render(self) -> str:
        """ASCII rendering of the table."""
        return format_table(self.headers, self.rows, title=self.title)


def table1(ctx: ExperimentContext) -> TableResult:
    """Table 1: simulation parameters (the paper's full-size values)."""
    from repro.config import paper_config

    params = paper_config(n_sockets=ctx.n_sockets).describe()
    return TableResult(
        title="Table 1: Simulation parameters",
        headers=["Parameter", "Value(s)"],
        rows=[[k, v] for k, v in params.items()],
    )


def table2(ctx: ExperimentContext) -> TableResult:
    """Table 2: per-workload time-weighted CTAs and memory footprint."""
    rows = [
        [spec.name, spec.paper_avg_ctas, spec.paper_footprint_mb]
        for spec in SUITE.values()
    ]
    return TableResult(
        title="Table 2: Time-weighted average CTAs and footprint (MB)",
        headers=["Benchmark", "Avg CTAs", "Footprint (MB)"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 2: workload parallelism vs larger GPUs
# ---------------------------------------------------------------------------

@dataclass
class Figure2Result:
    """% of workloads whose average CTA count fills a k-x larger GPU."""

    sm_counts: dict[int, int]
    fill_percent: dict[int, float]

    def render(self) -> str:
        rows = [
            [f"{k}x", self.sm_counts[k], f"{self.fill_percent[k]:.1f}%"]
            for k in sorted(self.fill_percent)
        ]
        return format_table(
            ["GPU size", "SMs", "% workloads filled"],
            rows,
            title="Figure 2: workloads able to fill future larger GPUs",
        )


def figure2(ctx: ExperimentContext, factors: tuple[int, ...] = (1, 2, 4, 8)) -> Figure2Result:
    """Figure 2, computed directly from the Table 2 CTA counts.

    A workload "fills" a GPU when its time-weighted average concurrent CTA
    count meets or exceeds the SM count (56 SMs per Pascal-class GPU).
    """
    sm_counts = {k: PASCAL_SM_COUNT * k for k in factors}
    fill = {}
    for k, sms in sm_counts.items():
        filled = sum(1 for spec in SUITE.values() if spec.paper_avg_ctas >= sms)
        fill[k] = 100.0 * filled / len(SUITE)
    return Figure2Result(sm_counts=sm_counts, fill_percent=fill)


# ---------------------------------------------------------------------------
# Figure 3: SW-only locality optimization
# ---------------------------------------------------------------------------

@dataclass
class Figure3Row:
    """One workload's bars in Figure 3 (all relative to one single GPU)."""

    workload: str
    traditional: float
    locality: float
    hypothetical: float
    grey_box: bool

    @property
    def sw_efficiency(self) -> float:
        """Locality-optimized performance relative to the hypothetical GPU."""
        return self.locality / self.hypothetical if self.hypothetical else 0.0


@dataclass
class Figure3Result:
    """Figure 3: 4-socket NUMA GPU vs single GPU and 4x hypothetical."""

    rows: list[Figure3Row]

    def render(self) -> str:
        ordered = sorted(self.rows, key=lambda r: r.hypothetical - r.locality,
                         reverse=True)
        table_rows = [
            [
                r.workload,
                r.traditional,
                r.locality,
                r.hypothetical,
                f"{100 * r.sw_efficiency:.0f}%",
                "grey" if r.grey_box else "",
            ]
            for r in ordered
        ]
        summary = (
            f"means: traditional={arithmetic_mean([r.traditional for r in self.rows]):.2f}x "
            f"locality={arithmetic_mean([r.locality for r in self.rows]):.2f}x "
            f"hypothetical={arithmetic_mean([r.hypothetical for r in self.rows]):.2f}x"
        )
        return (
            format_table(
                ["Workload", "Traditional", "Locality-Opt", "Hypo 4x", "SW eff", ""],
                table_rows,
                title="Figure 3: 4-socket NUMA GPU relative to a single GPU",
            )
            + "\n"
            + summary
        )

    @property
    def measured_grey_box(self) -> list[str]:
        """Workloads achieving >=99% of theoretical with SW only."""
        return [r.workload for r in self.rows if r.sw_efficiency >= 0.99]


def figure3(ctx: ExperimentContext, workloads: tuple[str, ...] | None = None) -> Figure3Result:
    """Figure 3: traditional vs locality-optimized vs hypothetical 4x."""
    names = workloads if workloads is not None else tuple(SUITE)
    single = ctx.config_single_gpu()
    traditional = ctx.config_traditional()
    locality = ctx.config_locality()
    hypothetical = ctx.config_hypothetical(ctx.n_sockets)
    rows = []
    for name in names:
        base = ctx.run(name, single)
        rows.append(
            Figure3Row(
                workload=name,
                traditional=ctx.run(name, traditional).speedup_over(base),
                locality=ctx.run(name, locality).speedup_over(base),
                hypothetical=ctx.run(name, hypothetical).speedup_over(base),
                grey_box=name in GREY_BOX,
            )
        )
    return Figure3Result(rows=rows)


# ---------------------------------------------------------------------------
# Figure 5: link utilization timeline (HPC-HPGMG-UVM)
# ---------------------------------------------------------------------------

@dataclass
class Figure5Result:
    """Per-GPU ingress/egress utilization over time with kernel markers."""

    workload: str
    window: int
    profiles: dict[str, list[float]]  # e.g. "link0.egress" -> utilization
    times: list[int]
    kernel_launch_times: list[int]
    asymmetry: dict[int, float]  # per-socket |egress-ingress| mean gap

    def render(self) -> str:
        rows = []
        for i, t in enumerate(self.times):
            row: list[object] = [t]
            for name in sorted(self.profiles):
                row.append(f"{self.profiles[name][i]:.2f}")
            rows.append(row)
        headers = ["cycle"] + sorted(self.profiles)
        mean_gap = arithmetic_mean(list(self.asymmetry.values()))
        return (
            format_table(
                headers,
                rows,
                title=f"Figure 5: link utilization profile, {self.workload}",
            )
            + f"\nkernel launches at: {self.kernel_launch_times}"
            + f"\nmean per-GPU direction asymmetry: {mean_gap:.3f}"
        )


def figure5(
    ctx: ExperimentContext,
    workload: str = "HPC-HPGMG-UVM",
    n_windows: int = 24,
) -> Figure5Result:
    """Figure 5: asymmetric link utilization on the locality baseline."""
    result = ctx.run(workload, ctx.config_locality(), record_timelines=True)
    window = max(1, result.cycles // n_windows)
    profiles: dict[str, list[float]] = {}
    binned = {}
    for name, series in result.link_timelines.items():
        profile = bin_series(series, window, result.cycles)
        binned[name] = profile
        profiles[name] = profile.utilization
    times = next(iter(binned.values())).times if binned else []
    asymmetry = {}
    for socket in range(result.n_sockets):
        egress = binned.get(f"link{socket}.egress")
        ingress = binned.get(f"link{socket}.ingress")
        if egress is None or ingress is None:
            continue
        n = min(len(egress.utilization), len(ingress.utilization))
        gap = sum(
            abs(egress.utilization[i] - ingress.utilization[i]) for i in range(n)
        )
        asymmetry[socket] = gap / n if n else 0.0
    return Figure5Result(
        workload=workload,
        window=window,
        profiles=profiles,
        times=times,
        kernel_launch_times=result.kernel_launch_times,
        asymmetry=asymmetry,
    )


# ---------------------------------------------------------------------------
# Figure 6: dynamic link adaptivity
# ---------------------------------------------------------------------------

@dataclass
class Figure6Result:
    """Speedups of dynamic links (per sample time) and doubled bandwidth."""

    sample_times: tuple[int, ...]
    per_workload: dict[str, dict[str, float]]  # name -> {"s5000": x, "2x": y}

    def mean_speedup(self, key: str) -> float:
        """Arithmetic-mean speedup of one policy column."""
        return arithmetic_mean([row[key] for row in self.per_workload.values()])

    def render(self) -> str:
        headers = (
            ["Workload"]
            + [f"dyn@{s}" for s in self.sample_times]
            + ["2x BW"]
        )
        ordered = sorted(
            self.per_workload.items(), key=lambda kv: kv[1]["2x"], reverse=True
        )
        rows = []
        for name, cols in ordered:
            rows.append(
                [name]
                + [cols[f"s{s}"] for s in self.sample_times]
                + [cols["2x"]]
            )
        means = (
            "means: "
            + " ".join(
                f"dyn@{s}={self.mean_speedup(f's{s}'):.3f}x"
                for s in self.sample_times
            )
            + f" 2x={self.mean_speedup('2x'):.3f}x"
        )
        return (
            format_table(
                headers,
                rows,
                title="Figure 6: dynamic link adaptivity vs doubled bandwidth",
            )
            + "\n"
            + means
        )


def figure6(
    ctx: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    sample_times: tuple[int, ...] = (1000, 5000, 10000, 50000),
    switch_time: int = 100,
) -> Figure6Result:
    """Figure 6: speedup of dynamic lane reversal over static links."""
    names = workloads if workloads is not None else STUDY_SET
    baseline = ctx.config_locality()
    doubled = ctx.config_doubled_link()
    per_workload: dict[str, dict[str, float]] = {}
    for name in names:
        base = ctx.run(name, baseline)
        cols: dict[str, float] = {}
        for sample in sample_times:
            dyn = ctx.config_dynamic_link(sample_time=sample, switch_time=switch_time)
            cols[f"s{sample}"] = ctx.run(name, dyn).speedup_over(base)
        cols["2x"] = ctx.run(name, doubled).speedup_over(base)
        per_workload[name] = cols
    return Figure6Result(sample_times=sample_times, per_workload=per_workload)


@dataclass
class SwitchTimeSensitivity:
    """Section 4.1: sensitivity of the dynamic policy to lane-turn cost."""

    switch_times: tuple[int, ...]
    mean_speedup: dict[int, float]

    def render(self) -> str:
        rows = [[t, self.mean_speedup[t]] for t in self.switch_times]
        return format_table(
            ["SwitchTime (cycles)", "mean speedup vs static"],
            rows,
            title="Section 4.1: lane turn time sensitivity",
        )


def switch_time_sensitivity(
    ctx: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    switch_times: tuple[int, ...] = (10, 100, 500),
    sample_time: int = 5000,
) -> SwitchTimeSensitivity:
    """Section 4.1: 10/100/500-cycle lane turn costs."""
    names = workloads if workloads is not None else STUDY_SET
    baseline = ctx.config_locality()
    means = {}
    for turn in switch_times:
        dyn = ctx.config_dynamic_link(sample_time=sample_time, switch_time=turn)
        speedups = [
            ctx.run(name, dyn).speedup_over(ctx.run(name, baseline))
            for name in names
        ]
        means[turn] = arithmetic_mean(speedups)
    return SwitchTimeSensitivity(switch_times=switch_times, mean_speedup=means)


# ---------------------------------------------------------------------------
# Figure 8: cache organizations
# ---------------------------------------------------------------------------

@dataclass
class Figure8Result:
    """Speedup of each cache organization over memory-side local L2."""

    per_workload: dict[str, dict[str, float]]

    COLUMNS = ("static_rc", "shared_coherent", "numa_aware")

    def mean_speedup(self, key: str) -> float:
        """Arithmetic-mean speedup of one organization."""
        return arithmetic_mean([row[key] for row in self.per_workload.values()])

    def render(self) -> str:
        ordered = sorted(
            self.per_workload.items(),
            key=lambda kv: kv[1]["numa_aware"],
            reverse=True,
        )
        rows = [
            [name] + [cols[c] for c in self.COLUMNS] for name, cols in ordered
        ]
        means = " ".join(
            f"{c}={self.mean_speedup(c):.3f}x" for c in self.COLUMNS
        )
        return (
            format_table(
                ["Workload", "Static R$", "Shared coherent", "NUMA-aware"],
                rows,
                title="Figure 8: cache organizations vs mem-side local-only L2",
            )
            + f"\nmeans: {means}"
        )


def figure8(
    ctx: ExperimentContext, workloads: tuple[str, ...] | None = None
) -> Figure8Result:
    """Figure 8: the four Figure 7 organizations on the study set."""
    names = workloads if workloads is not None else STUDY_SET
    baseline = ctx.config_cache(CacheArch.MEM_SIDE)
    configs = {
        "static_rc": ctx.config_cache(CacheArch.STATIC_RC),
        "shared_coherent": ctx.config_cache(CacheArch.SHARED_COHERENT),
        "numa_aware": ctx.config_cache(CacheArch.NUMA_AWARE),
    }
    per_workload = {}
    for name in names:
        base = ctx.run(name, baseline)
        per_workload[name] = {
            key: ctx.run(name, config).speedup_over(base)
            for key, config in configs.items()
        }
    return Figure8Result(per_workload=per_workload)


# ---------------------------------------------------------------------------
# Figure 9: coherence invalidation overhead
# ---------------------------------------------------------------------------

@dataclass
class Figure9Result:
    """Overhead of SW bulk invalidations vs the ignore-invalidations bound."""

    per_workload: dict[str, float]  # overhead fraction (0.10 = 10% slower)

    @property
    def mean_overhead(self) -> float:
        """Arithmetic-mean overhead across the study set."""
        return arithmetic_mean(list(self.per_workload.values()))

    def render(self) -> str:
        ordered = sorted(self.per_workload.items(), key=lambda kv: -kv[1])
        rows = [[name, f"{100 * v:.1f}%"] for name, v in ordered]
        return (
            format_table(
                ["Workload", "Invalidation overhead"],
                rows,
                title="Figure 9: SW coherence overhead in GPU L2 caches",
            )
            + f"\nmean overhead: {100 * self.mean_overhead:.1f}%"
        )


def figure9(
    ctx: ExperimentContext, workloads: tuple[str, ...] | None = None
) -> Figure9Result:
    """Figure 9: cost of extending bulk invalidation into the L2s."""
    names = workloads if workloads is not None else STUDY_SET
    with_inval = ctx.config_cache(CacheArch.NUMA_AWARE)
    without = ctx.config_no_invalidations()
    per_workload = {}
    for name in names:
        t_with = ctx.run(name, with_inval).cycles
        t_without = ctx.run(name, without).cycles
        per_workload[name] = (t_with / t_without) - 1.0 if t_without else 0.0
    return Figure9Result(per_workload=per_workload)


@dataclass
class WritePolicyResult:
    """Section 5.2: write-back vs write-through L2."""

    per_workload: dict[str, float]  # write-back speedup over write-through

    @property
    def mean_speedup(self) -> float:
        """Mean advantage of write-back (paper: ~1.09x)."""
        return arithmetic_mean(list(self.per_workload.values()))

    def render(self) -> str:
        ordered = sorted(self.per_workload.items(), key=lambda kv: -kv[1])
        rows = [[name, v] for name, v in ordered]
        return (
            format_table(
                ["Workload", "WB speedup over WT"],
                rows,
                title="Section 5.2: write-back vs write-through L2",
            )
            + f"\nmean: {self.mean_speedup:.3f}x"
        )


def writeback_sensitivity(
    ctx: ExperimentContext, workloads: tuple[str, ...] | None = None
) -> WritePolicyResult:
    """Section 5.2: write-back L2 vs write-through L2 (paper: +9%)."""
    names = workloads if workloads is not None else STUDY_SET
    wb = ctx.config_cache(CacheArch.NUMA_AWARE)
    wt = ctx.config_write_through()
    per_workload = {}
    for name in names:
        per_workload[name] = ctx.run(name, wb).speedup_over(ctx.run(name, wt))
    return WritePolicyResult(per_workload=per_workload)


# ---------------------------------------------------------------------------
# Figure 10: combined improvement
# ---------------------------------------------------------------------------

@dataclass
class Figure10Result:
    """Combined dynamic links + NUMA-aware caches, 4 sockets."""

    per_workload: dict[str, dict[str, float]]

    def mean(self, key: str) -> float:
        """Arithmetic mean of one column."""
        return arithmetic_mean([r[key] for r in self.per_workload.values()])

    def render(self) -> str:
        ordered = sorted(
            self.per_workload.items(),
            key=lambda kv: kv[1]["combined"],
            reverse=True,
        )
        rows = [
            [name, c["baseline"], c["combined"], c["hypothetical"]]
            for name, c in ordered
        ]
        return (
            format_table(
                ["Workload", "SW baseline", "NUMA-aware", "Hypo 4x"],
                rows,
                title="Figure 10: combined improvement vs single GPU",
            )
            + f"\nmeans: baseline={self.mean('baseline'):.2f}x "
            f"combined={self.mean('combined'):.2f}x "
            f"hypothetical={self.mean('hypothetical'):.2f}x"
            + f"\ncombined over baseline: "
            f"{self.mean('combined') / max(self.mean('baseline'), 1e-9):.2f}x"
        )


def figure10(
    ctx: ExperimentContext, workloads: tuple[str, ...] | None = None
) -> Figure10Result:
    """Figure 10: both mechanisms together vs single GPU and 4x GPU."""
    names = workloads if workloads is not None else STUDY_SET
    single = ctx.config_single_gpu()
    baseline = ctx.config_locality()
    combined = ctx.config_combined()
    hypothetical = ctx.config_hypothetical(ctx.n_sockets)
    per_workload = {}
    for name in names:
        base = ctx.run(name, single)
        per_workload[name] = {
            "baseline": ctx.run(name, baseline).speedup_over(base),
            "combined": ctx.run(name, combined).speedup_over(base),
            "hypothetical": ctx.run(name, hypothetical).speedup_over(base),
        }
    return Figure10Result(per_workload=per_workload)


# ---------------------------------------------------------------------------
# Figure 11: scalability
# ---------------------------------------------------------------------------

@dataclass
class Figure11Result:
    """2/4/8-socket NUMA-aware GPUs vs hypothetical 2x/4x/8x GPUs."""

    socket_counts: tuple[int, ...]
    per_workload: dict[str, dict[str, float]]

    def mean_speedup(self, sockets: int) -> float:
        """Mean NUMA-aware speedup at one socket count."""
        return arithmetic_mean(
            [r[f"numa{sockets}"] for r in self.per_workload.values()]
        )

    def mean_hypothetical(self, sockets: int) -> float:
        """Mean hypothetical same-size speedup."""
        return arithmetic_mean(
            [r[f"hypo{sockets}"] for r in self.per_workload.values()]
        )

    def efficiency(self, sockets: int) -> float:
        """NUMA-aware speedup as a fraction of the hypothetical GPU's."""
        hypo = self.mean_hypothetical(sockets)
        return self.mean_speedup(sockets) / hypo if hypo else 0.0

    def render(self) -> str:
        headers = ["Workload"]
        for k in self.socket_counts:
            headers += [f"NUMA {k}s", f"Hypo {k}x"]
        rows = []
        for name, cols in sorted(self.per_workload.items()):
            row: list[object] = [name]
            for k in self.socket_counts:
                row += [cols[f"numa{k}"], cols[f"hypo{k}"]]
            rows.append(row)
        summary_lines = [
            f"{k}-socket: speedup {self.mean_speedup(k):.2f}x, "
            f"hypothetical {self.mean_hypothetical(k):.2f}x, "
            f"efficiency {100 * self.efficiency(k):.0f}%"
            for k in self.socket_counts
        ]
        return (
            format_table(
                headers, rows, title="Figure 11: NUMA-aware GPU scalability"
            )
            + "\n"
            + "\n".join(summary_lines)
        )


def figure11(
    ctx: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    socket_counts: tuple[int, ...] = (2, 4, 8),
) -> Figure11Result:
    """Figure 11: full-design scalability over all 41 workloads."""
    names = workloads if workloads is not None else tuple(SUITE)
    single = ctx.config_single_gpu()
    per_workload: dict[str, dict[str, float]] = {}
    for name in names:
        base = ctx.run(name, single)
        cols: dict[str, float] = {}
        for k in socket_counts:
            numa = ctx.config_combined(n_sockets=k)
            hypo = ctx.config_hypothetical(k)
            cols[f"numa{k}"] = ctx.run(name, numa).speedup_over(base)
            cols[f"hypo{k}"] = ctx.run(name, hypo).speedup_over(base)
        per_workload[name] = cols
    return Figure11Result(socket_counts=socket_counts, per_workload=per_workload)


# ---------------------------------------------------------------------------
# Topology sweep: policy x fabric x socket count
# ---------------------------------------------------------------------------

@dataclass
class TopologyCell:
    """One (policy, topology, socket count) aggregate of the sweep."""

    policy: str
    kind: str
    n_sockets: int
    speedup: float  # vs the crossbar under the same policy + sockets
    mean_hops: float
    bisection_utilization: float
    n_edges: int
    bisection_bandwidth: float  # canonical-cut bytes/cycle of the spec


@dataclass
class TopologySweepResult:
    """Policy x fabric x socket-count study over the topology set.

    Every multi-hop fabric is normalized to the crossbar at the same
    policy and socket count, so the columns read "what does this fabric
    cost (or buy) relative to the paper's non-blocking switch".
    """

    policies: tuple[str, ...]
    kinds: tuple[str, ...]
    socket_counts: tuple[int, ...]
    cells: list[TopologyCell]
    per_workload: dict[tuple[str, str, int], dict[str, float]]

    def cell(self, policy: str, kind: str, n_sockets: int) -> TopologyCell:
        """Lookup one aggregate cell."""
        for cell in self.cells:
            if (cell.policy, cell.kind, cell.n_sockets) == (
                policy, kind, n_sockets
            ):
                return cell
        raise KeyError((policy, kind, n_sockets))

    def render(self) -> str:
        rows = [
            [
                c.policy,
                c.kind,
                c.n_sockets,
                f"{c.speedup:.3f}x",
                f"{c.mean_hops:.2f}",
                f"{100 * c.bisection_utilization:.1f}%",
                c.n_edges,
                f"{c.bisection_bandwidth:.0f}",
            ]
            for c in self.cells
        ]
        return format_table(
            [
                "Policy",
                "Topology",
                "Sockets",
                "vs crossbar",
                "Mean hops",
                "Bisection util",
                "Edges",
                "Bisection B/cyc",
            ],
            rows,
            title="Topology sweep: policy x fabric x socket count",
        )


def topology_sweep(
    ctx: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    kinds: tuple[str, ...] = ("ring", "mesh2d", "switch_tree"),
    socket_counts: tuple[int, ...] = (2, 4, 8),
    policies: tuple[str, ...] = ("locality", "combined"),
) -> TopologySweepResult:
    """Policy x topology x socket-count sweep (hop + bisection metrics).

    ``policies``: ``locality`` is the Section 3 software baseline
    (mem-side L2, static lanes); ``combined`` is the full NUMA-aware
    design (NUMA-aware caches + dynamic per-edge lanes). Speedups are
    against the *crossbar* under the same policy and socket count, so a
    value below 1.0 is the price of the cheaper fabric.

    Bisection utilization is measured on the canonical half-split cut of
    :func:`repro.topology.routing.bisection_cut`: bytes crossing the cut
    over the run, divided by the cut's aggregate capacity x cycles.
    """
    names = workloads if workloads is not None else TOPOLOGY_SET
    cells: list[TopologyCell] = []
    per_workload: dict[tuple[str, str, int], dict[str, float]] = {}
    for policy in policies:
        combined = policy == "combined"
        for k in socket_counts:
            if combined:
                baseline = ctx.config_combined(n_sockets=k)
            else:
                baseline = ctx.config_locality(n_sockets=k)
            for kind in kinds:
                config = ctx.config_topology(kind, n_sockets=k,
                                             combined=combined)
                spec = config.topology
                assert spec is not None
                cut = bisection_cut(spec)
                cut_names = {spec.edges[e].name for e in cut}
                cut_bandwidth = bisection_bandwidth(spec)
                speedups: list[float] = []
                utils: list[float] = []
                histogram: dict[int, int] = {}
                for name in names:
                    base = ctx.run(name, baseline)
                    result = ctx.run(name, config)
                    speedup = result.speedup_over(base)
                    cut_bytes = sum(
                        e.total_bytes
                        for e in result.edges
                        if e.name in cut_names
                    )
                    util = (
                        cut_bytes / (cut_bandwidth * result.cycles)
                        if cut_bandwidth and result.cycles
                        else 0.0
                    )
                    speedups.append(speedup)
                    utils.append(util)
                    for hop, count in result.hop_histogram.items():
                        histogram[hop] = histogram.get(hop, 0) + count
                    per_workload.setdefault((policy, kind, k), {})[name] = (
                        speedup
                    )
                total_packets = sum(histogram.values())
                mean_hops = (
                    sum(h * c for h, c in histogram.items()) / total_packets
                    if total_packets
                    else 0.0
                )
                cells.append(
                    TopologyCell(
                        policy=policy,
                        kind=kind,
                        n_sockets=k,
                        speedup=geometric_mean([max(s, 1e-9) for s in speedups]),
                        mean_hops=mean_hops,
                        bisection_utilization=arithmetic_mean(utils),
                        n_edges=len(spec.edges),
                        bisection_bandwidth=cut_bandwidth,
                    )
                )
    return TopologySweepResult(
        policies=policies,
        kinds=kinds,
        socket_counts=socket_counts,
        cells=cells,
        per_workload=per_workload,
    )


# ---------------------------------------------------------------------------
# Locality sweep: placement x CTA policy x fabric x socket count
# ---------------------------------------------------------------------------

#: The default policy grid of the locality driver: the two distance-aware
#: placements, the affinity-aware scheduler, and their headline pairing.
LOCALITY_POLICIES: tuple[tuple[str, str], ...] = (
    ("distance_weighted_first_touch", "contiguous"),
    ("access_counter_migration", "contiguous"),
    ("first_touch", "distance_affine"),
    ("distance_weighted_first_touch", "distance_affine"),
)


@dataclass
class LocalityCell:
    """One (placement, cta, topology, socket count) aggregate."""

    placement: str
    cta: str
    kind: str
    n_sockets: int
    speedup: float  # geomean vs the distance-blind baseline, same fabric
    mean_hops: float  # packet-weighted, aggregated over the workloads
    baseline_mean_hops: float
    remote_fraction: float  # arithmetic mean over the workloads
    baseline_remote_fraction: float
    migrations: int
    re_homed_pages: int

    @property
    def hops_delta(self) -> float:
        """Packet-weighted mean-hop change vs the baseline (negative = better)."""
        return self.mean_hops - self.baseline_mean_hops


@dataclass
class LocalitySweepResult:
    """Placement x CTA policy x fabric x socket-count study.

    Every cell is normalized to the *distance-blind* baseline
    (``FIRST_TOUCH`` + ``contiguous``, no locality specs) on the same
    fabric and socket count, so the columns read "what does
    distance-awareness buy on this interconnect".
    """

    policies: tuple[tuple[str, str], ...]
    kinds: tuple[str, ...]
    socket_counts: tuple[int, ...]
    cells: list[LocalityCell]
    per_workload: dict[tuple[str, str, str, int], dict[str, float]]

    def cell(self, placement: str, cta: str, kind: str,
             n_sockets: int) -> LocalityCell:
        """Lookup one aggregate cell."""
        for cell in self.cells:
            if (cell.placement, cell.cta, cell.kind, cell.n_sockets) == (
                placement, cta, kind, n_sockets
            ):
                return cell
        raise KeyError((placement, cta, kind, n_sockets))

    def render(self) -> str:
        rows = [
            [
                c.placement,
                c.cta,
                c.kind,
                c.n_sockets,
                f"{c.speedup:.3f}x",
                f"{c.mean_hops:.3f}",
                f"{c.baseline_mean_hops:.3f}",
                f"{100 * c.remote_fraction:.1f}%",
                f"{100 * c.baseline_remote_fraction:.1f}%",
                c.re_homed_pages,
            ]
            for c in self.cells
        ]
        return format_table(
            [
                "Placement",
                "CTA policy",
                "Topology",
                "Sockets",
                "Speedup",
                "Mean hops",
                "(blind)",
                "Remote",
                "(blind)",
                "Re-homes",
            ],
            rows,
            title="Locality sweep: policy x fabric x socket count "
            "(vs distance-blind first_touch/contiguous)",
        )


def _weighted_mean_hops(histogram: dict[int, int]) -> float:
    total = sum(histogram.values())
    if not total:
        return 0.0
    return sum(h * c for h, c in histogram.items()) / total


def locality_sweep(
    ctx: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    kinds: tuple[str, ...] = ("ring", "mesh2d"),
    socket_counts: tuple[int, ...] = (8, 16),
    policies: tuple[tuple[str, str], ...] = LOCALITY_POLICIES,
) -> LocalitySweepResult:
    """Placement x CTA policy x fabric x socket-count sweep.

    The distance-blind baseline of every fabric/socket cell is the plain
    topology config (``FIRST_TOUCH`` + ``contiguous``, no locality
    specs) — the identical configuration the topology sweep runs, so
    baselines come from (and warm) the shared result cache. Reported per
    cell: geomean speedup, packet-weighted mean hops (aggregated route
    histograms), mean remote-access fraction, and first-touch migration
    / dynamic re-home totals.
    """
    names = workloads if workloads is not None else TOPOLOGY_SET
    cells: list[LocalityCell] = []
    per_workload: dict[tuple[str, str, str, int], dict[str, float]] = {}
    for kind in kinds:
        for k in socket_counts:
            baseline = ctx.config_topology(kind, n_sockets=k)
            base_hist: dict[int, int] = {}
            base_remote: list[float] = []
            base_results = {}
            for name in names:
                result = ctx.run(name, baseline)
                base_results[name] = result
                base_remote.append(result.total_remote_fraction)
                for hops, count in result.hop_histogram.items():
                    base_hist[hops] = base_hist.get(hops, 0) + count
            for placement, cta in policies:
                config = ctx.config_locality_policy(
                    placement, cta, kind=kind, n_sockets=k
                )
                speedups: list[float] = []
                remotes: list[float] = []
                histogram: dict[int, int] = {}
                migrations = 0
                re_homed = 0
                for name in names:
                    result = ctx.run(name, config)
                    speedup = result.speedup_over(base_results[name])
                    speedups.append(speedup)
                    remotes.append(result.total_remote_fraction)
                    migrations += result.migrations
                    re_homed += result.re_homed_pages
                    for hops, count in result.hop_histogram.items():
                        histogram[hops] = histogram.get(hops, 0) + count
                    per_workload.setdefault(
                        (placement, cta, kind, k), {}
                    )[name] = speedup
                cells.append(
                    LocalityCell(
                        placement=placement,
                        cta=cta,
                        kind=kind,
                        n_sockets=k,
                        speedup=geometric_mean(
                            [max(s, 1e-9) for s in speedups]
                        ),
                        mean_hops=_weighted_mean_hops(histogram),
                        baseline_mean_hops=_weighted_mean_hops(base_hist),
                        remote_fraction=arithmetic_mean(remotes),
                        baseline_remote_fraction=arithmetic_mean(base_remote),
                        migrations=migrations,
                        re_homed_pages=re_homed,
                    )
                )
    return LocalitySweepResult(
        policies=policies,
        kinds=kinds,
        socket_counts=socket_counts,
        cells=cells,
        per_workload=per_workload,
    )


# ---------------------------------------------------------------------------
# Section 6: power
# ---------------------------------------------------------------------------

@dataclass
class PowerResult:
    """Interconnect power of the baseline vs the NUMA-aware design."""

    per_workload: dict[str, dict[str, float]]  # watts (geomean'd below)
    bandwidth_scale: float

    def geomean(self, key: str) -> float:
        """Geometric-mean projected full-size watts for one design."""
        values = [
            max(r[key], 1e-9) for r in self.per_workload.values()
        ]
        return geometric_mean(values)

    def render(self) -> str:
        rows = [
            [name, c["baseline_w"], c["numa_aware_w"]]
            for name, c in sorted(self.per_workload.items())
        ]
        return (
            format_table(
                ["Workload", "Baseline W (proj.)", "NUMA-aware W (proj.)"],
                rows,
                title="Section 6: interconnect power at 10 pJ/b (projected full-size)",
            )
            + f"\ngeomeans: baseline={self.geomean('baseline_w'):.1f}W "
            f"numa-aware={self.geomean('numa_aware_w'):.1f}W"
        )


def power_analysis(
    ctx: ExperimentContext, workloads: tuple[str, ...] | None = None
) -> PowerResult:
    """Section 6: communication power, baseline vs NUMA-aware (4 sockets).

    Scaled-run watts are projected to the paper's full-size bandwidths by
    dividing by the bandwidth scale factor (power tracks bytes/second).
    """
    names = workloads if workloads is not None else tuple(SUITE)
    baseline = ctx.config_locality()
    combined = ctx.config_combined()
    bandwidth_scale = ctx.sms_per_socket / 64.0
    per_workload = {}
    for name in names:
        base_power = estimate_power(ctx.run(name, baseline))
        numa_power = estimate_power(ctx.run(name, combined))
        per_workload[name] = {
            "baseline_w": base_power.average_watts / bandwidth_scale,
            "numa_aware_w": numa_power.average_watts / bandwidth_scale,
        }
    return PowerResult(per_workload=per_workload, bandwidth_scale=bandwidth_scale)


# ---------------------------------------------------------------------------
# everything at once
# ---------------------------------------------------------------------------

def run_all(ctx: ExperimentContext) -> dict[str, object]:
    """Run every experiment; returns {experiment id: result object}."""
    return {
        "table1": table1(ctx),
        "table2": table2(ctx),
        "figure2": figure2(ctx),
        "figure3": figure3(ctx),
        "figure5": figure5(ctx),
        "figure6": figure6(ctx),
        "figure8": figure8(ctx),
        "figure9": figure9(ctx),
        "figure10": figure10(ctx),
        "figure11": figure11(ctx),
        "switch_time_sensitivity": switch_time_sensitivity(ctx),
        "writeback_sensitivity": writeback_sensitivity(ctx),
        "power": power_analysis(ctx),
        "topology": topology_sweep(ctx),
        "locality": locality_sweep(ctx),
    }
