"""Supervised execution of experiment task grids.

The supervisor isolates per-task failures so one crashed, hung, or
excepting simulation marks only that grid cell failed instead of
aborting an entire figure suite. It replaces the previous
``ProcessPoolExecutor`` fan-out for a structural reason: when a pool
worker dies, ``concurrent.futures`` raises ``BrokenProcessPool`` on
*every* in-flight future — the crash cannot be attributed to the task
that caused it, so exact retry accounting (and therefore deterministic
chaos testing) is impossible. Here each worker process is dispatched
exactly one task at a time over its own pipe, so the supervisor always
knows which task a dead or hung worker was running.

Failure-handling state machine (per task; see DESIGN.md,
"Failure-handling contract")::

    WAITING --dispatch--> RUNNING --ok--------------------> DONE
       ^                     | crash / timeout / exception
       |                     v
       +--backoff sleep-- RETRY-SCHEDULED   (attempt < max_retries)
                             | budget exhausted
                             v
                          FAILED  --fail-fast--> run aborted
                                  --keep-going--> remaining tasks continue

Retries back off exponentially: the retry after 0-based failed attempt
``a`` waits ``base_delay * 2**a`` seconds. Delays recorded in the
attempt transcript are the *scheduled* values, so transcripts are
deterministic and chaos tests can assert the schedule exactly.

Crash recovery rebuilds only what died: the dead worker is respawned and
only its task is rescheduled — finished results are never discarded and
unstarted tasks are unaffected. Hung workers are detected by a per-task
wall-clock deadline, killed, and respawned the same way. The serial
(``jobs <= 1``) path runs the identical state machine in-process —
worker crashes surface as :class:`~repro.harness.faults.InjectedCrash`
and timeouts via ``SIGALRM`` — so ``--jobs 1`` and ``--jobs N`` produce
identical failure reports for the same fault plan.

SIGINT/SIGTERM stop a run gracefully in either mode: the first signal
kills in-flight workers and finalizes the report with
``interrupted=True`` and the in-flight tasks listed as unfinished, so
the caller can print per-task states and the exact ``--resume``
command. A second signal aborts immediately (:class:`KeyboardInterrupt`).
"""

from __future__ import annotations

import json
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.config import (
    CacheArch,
    CtaPolicy,
    LinkPolicy,
    PlacementPolicy,
    config_digest,
)
from repro.errors import ExecutionError
from repro.harness import faults
from repro.harness.formatting import format_table
from repro.sim.instrumentation import SIM_TALLY
from repro.workloads.spec import WorkloadScale

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.parallel import RunTask
    from repro.metrics.report import RunResult

#: How long (s) the pool blocks at most between supervision ticks.
_MAX_TICK = 0.5


# ---------------------------------------------------------------------------
# policy and report data model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor responds to task failures."""

    #: retries allowed after the first attempt (total attempts = +1).
    max_retries: int = 2
    #: backoff before the retry following 0-based failed attempt ``a``
    #: is ``base_delay * 2**a`` seconds.
    base_delay: float = 0.5
    #: per-attempt wall-clock budget; None disables timeout kills.
    task_timeout: float | None = None
    #: False = fail fast (abort the run on the first exhausted task).
    keep_going: bool = True

    def delay_after(self, failed_attempt: int) -> float:
        """Scheduled backoff after one 0-based failed attempt."""
        return self.base_delay * (2 ** failed_attempt)

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1


@dataclass
class Attempt:
    """One entry of a task's attempt transcript."""

    attempt: int  #: 0-based attempt number
    outcome: str  #: "ok" | "crash" | "timeout" | "error"
    detail: str = ""
    #: scheduled backoff (s) before the next attempt; None if terminal.
    retry_delay: float | None = None


@dataclass
class TaskReport:
    """Transcript of one task that needed supervision."""

    key: str
    workload: str
    scale: str
    record_timelines: bool
    config_fingerprint: str
    index: int
    repro_command: str
    status: str  #: "recovered" | "failed" | "unfinished"
    attempts: list[Attempt] = field(default_factory=list)

    def outcomes(self) -> list[str]:
        return [attempt.outcome for attempt in self.attempts]

    def backoff_schedule(self) -> list[float]:
        return [
            attempt.retry_delay for attempt in self.attempts
            if attempt.retry_delay is not None
        ]


@dataclass
class FailureReport:
    """Structured end-of-run account of everything that went wrong.

    ``tasks`` holds only tasks whose transcript contains at least one
    non-ok attempt (recovered or failed) — a clean run has an empty
    report. Rendered by the CLI and exported to JSON so a failed suite
    always leaves an actionable artifact: every entry carries the exact
    ``repro run`` command and config fingerprint to reproduce its cell.
    """

    policy: RetryPolicy
    total: int
    executed: int = 0
    aborted: bool = False
    #: True when SIGINT/SIGTERM stopped the run early (workers killed,
    #: in-flight tasks listed in :attr:`unfinished`, journal flushed).
    interrupted: bool = False
    tasks: list[TaskReport] = field(default_factory=list)
    #: task keys never completed (fail-fast abort leftovers).
    unfinished: list[str] = field(default_factory=list)
    #: disk-cache counters (hits/misses/corrupt/put_errors), if attached.
    cache: dict | None = None
    #: harness telemetry: per-worker task spans (wall clock) and tally
    #: deltas plus cross-process totals (see DESIGN.md, "Observability
    #: contract"). Populated by run_supervised in both modes.
    telemetry: dict | None = None

    @property
    def failed(self) -> list[TaskReport]:
        return [t for t in self.tasks if t.status == "failed"]

    @property
    def recovered(self) -> list[TaskReport]:
        return [t for t in self.tasks if t.status == "recovered"]

    def ok(self) -> bool:
        return not self.failed and not self.aborted and not self.interrupted

    def headline(self) -> str:
        if self.interrupted:
            parts = [
                f"supervised run INTERRUPTED: {self.executed}/{self.total} "
                f"tasks finished, {len(self.unfinished)} unfinished"
            ]
            if self.failed:
                parts.append(
                    f"{len(self.failed)} tasks exhausted their retry budget"
                )
            return "; ".join(parts)
        if self.ok():
            if not self.tasks:
                return (
                    f"supervised run ok: {self.executed}/{self.total} tasks, "
                    "no faults"
                )
            return (
                f"supervised run ok: {self.executed}/{self.total} tasks, "
                f"{len(self.recovered)} recovered after faults"
            )
        parts = [
            f"supervised run FAILED: {len(self.failed)} of {self.total} "
            f"tasks exhausted their retry budget "
            f"(max_retries={self.policy.max_retries})"
        ]
        if self.aborted:
            parts.append(
                f"aborted (fail-fast) with {len(self.unfinished)} tasks "
                "unfinished"
            )
        return "; ".join(parts)

    def render(self) -> str:
        """Human-readable report (headline + transcript table)."""
        lines = [self.headline()]
        if self.tasks:
            rows = []
            for task in self.tasks:
                delays = ", ".join(
                    f"{d:g}s" for d in task.backoff_schedule()
                ) or "-"
                rows.append([
                    task.key,
                    task.status,
                    " -> ".join(task.outcomes()),
                    delays,
                    task.repro_command,
                ])
            lines.append(format_table(
                ["Task", "Status", "Attempts", "Backoff", "Repro"],
                rows,
                title="Attempt transcripts",
            ))
            for task in self.failed:
                last = task.attempts[-1]
                lines.append(
                    f"  {task.key}: last failure ({last.outcome}) "
                    f"{last.detail} [config {task.config_fingerprint[:12]}]"
                )
        if self.cache is not None:
            lines.append(
                f"disk cache: {self.cache['hits']} hits, "
                f"{self.cache['misses']} misses, "
                f"{self.cache['corrupt']} quarantined, "
                f"{self.cache['put_errors']} failed writes"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "policy": asdict(self.policy),
            "total": self.total,
            "executed": self.executed,
            "aborted": self.aborted,
            "interrupted": self.interrupted,
            "ok": self.ok(),
            "tasks": [asdict(task) for task in self.tasks],
            "unfinished": list(self.unfinished),
            "cache": self.cache,
            "telemetry": self.telemetry,
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json_dict(), indent=1) + "\n")
        return path


# ---------------------------------------------------------------------------
# harness telemetry
# ---------------------------------------------------------------------------
def _new_telemetry(mode: str) -> dict:
    """Empty telemetry record for one supervised run (``serial``/``pool``)."""
    return {
        "mode": mode,
        "workers": {},
        "totals": {"runs": 0, "events": 0, "cycles": 0, "wall_seconds": 0.0},
    }


def _record_telemetry(telemetry: dict, worker_id: str, key: str,
                      sample: dict) -> None:
    """Fold one task's measured sample into the run telemetry.

    ``sample`` is the dict produced by
    :func:`repro.harness.parallel._execute_measured`: the task's
    ``time.monotonic()`` span plus the SIM_TALLY delta it produced in
    its executing process. Per-task ``wall_seconds`` here is the *engine
    drain* wall clock (the RunTally semantics), while ``t_start`` /
    ``t_end`` bound the whole task including system construction.
    """
    workers = telemetry["workers"]
    record = workers.get(worker_id)
    if record is None:
        record = workers[worker_id] = {
            "tasks": [],
            "tally": {"runs": 0, "events": 0, "cycles": 0,
                      "wall_seconds": 0.0},
        }
    record["tasks"].append({
        "key": key,
        "t_start": sample["t_start"],
        "t_end": sample["t_end"],
        "runs": sample["runs"],
        "events": sample["events"],
        "cycles": sample["cycles"],
        "wall_seconds": sample["sim_wall_seconds"],
    })
    tally = record["tally"]
    totals = telemetry["totals"]
    for name in ("runs", "events", "cycles"):
        tally[name] += sample[name]
        totals[name] += sample[name]
    tally["wall_seconds"] += sample["sim_wall_seconds"]
    totals["wall_seconds"] += sample["sim_wall_seconds"]


# ---------------------------------------------------------------------------
# task identity
# ---------------------------------------------------------------------------
def task_key(task: "RunTask", scale_name: str) -> str:
    """Stable, human-scannable identity of one task.

    Derived from the workload name, scale, timeline flag, and the
    content-addressed config digest — never from submission order or
    process ids — so fault plans and transcripts name the same task in
    any execution mode.
    """
    suffix = "+tl" if task.record_timelines else ""
    return (
        f"{task.workload}@{scale_name}{suffix}"
        f"/{config_digest(task.config)[:12]}"
    )


def repro_command_for(task: "RunTask", scale_name: str) -> str:
    """The ``repro run`` invocation reproducing one task's simulation.

    Emits only non-default flags; configs outside the CLI surface (e.g.
    hypothetical big-GPU scalings) still get the closest command — the
    report's full config fingerprint pins the exact identity.
    """
    config = task.config
    parts = [
        "repro", "run", task.workload,
        "--scale", scale_name,
        "--sockets", str(config.n_sockets),
    ]
    if config.cache_arch is not CacheArch.MEM_SIDE:
        parts += ["--cache", config.cache_arch.value]
    if config.link_policy is not LinkPolicy.STATIC:
        parts += ["--links", config.link_policy.value]
    placement = (
        config.placement_spec.kind if config.placement_spec is not None
        else config.placement.value
    )
    if placement != PlacementPolicy.FIRST_TOUCH.value:
        parts += ["--placement", placement]
    cta = (
        config.cta_spec.kind if config.cta_spec is not None
        else config.cta_policy.value
    )
    if cta != CtaPolicy.CONTIGUOUS.value:
        parts += ["--cta-policy", cta]
    if config.topology is not None:
        parts += ["--topology", config.topology.kind]
    return " ".join(parts)


# ---------------------------------------------------------------------------
# shared per-task state machine
# ---------------------------------------------------------------------------
@dataclass
class _TaskState:
    index: int
    task: "RunTask"
    key: str
    attempts: list[Attempt] = field(default_factory=list)
    next_attempt: int = 0
    ready_at: float = 0.0
    done: bool = False
    failed: bool = False


def _record_failure(state: _TaskState, outcome: str, detail: str,
                    policy: RetryPolicy, now: float) -> bool:
    """Append a failed attempt; schedule the retry. True = exhausted."""
    attempt = Attempt(state.next_attempt, outcome, detail)
    state.attempts.append(attempt)
    if state.next_attempt < policy.max_retries:
        delay = policy.delay_after(state.next_attempt)
        attempt.retry_delay = delay
        state.ready_at = now + delay
        state.next_attempt += 1
        return False
    state.failed = True
    return True


def _record_success(state: _TaskState) -> None:
    state.attempts.append(Attempt(state.next_attempt, "ok"))
    state.done = True


def _finalize_report(report: FailureReport, states: Sequence[_TaskState],
                     scale_name: str) -> FailureReport:
    for state in states:
        eventful = state.failed or len(state.attempts) > 1 or (
            state.attempts and state.attempts[0].outcome != "ok"
        )
        if not eventful:
            continue
        status = (
            "failed" if state.failed
            else "recovered" if state.done
            else "unfinished"
        )
        report.tasks.append(TaskReport(
            key=state.key,
            workload=state.task.workload,
            scale=scale_name,
            record_timelines=state.task.record_timelines,
            config_fingerprint=config_digest(state.task.config),
            index=state.index,
            repro_command=repro_command_for(state.task, scale_name),
            status=status,
            attempts=state.attempts,
        ))
    report.unfinished = [
        s.key for s in states if not s.done and not s.failed
    ]
    return report


# ---------------------------------------------------------------------------
# graceful interruption
# ---------------------------------------------------------------------------
class _InterruptFlag:
    """Latched by the SIGINT/SIGTERM handler; polled by the run loops."""

    __slots__ = ("signum",)

    def __init__(self) -> None:
        self.signum: int | None = None

    def __bool__(self) -> bool:
        return self.signum is not None


@contextmanager
def _interrupt_guard():
    """Turn SIGINT/SIGTERM into a graceful-stop request (main thread only).

    The first signal latches the flag: the run loops stop dispatching,
    kill in-flight workers, and fall through to normal report
    finalization (so the journal is flushed and every task state is
    accounted for). A second signal raises :class:`KeyboardInterrupt`
    for users who want out *now*; the ``finally`` blocks still destroy
    the worker pool on the way up.
    """
    flag = _InterruptFlag()
    if threading.current_thread() is not threading.main_thread():
        yield flag
        return

    def _on_signal(signum, frame):
        if flag.signum is not None:
            raise KeyboardInterrupt
        flag.signum = signum

    prev_int = signal.signal(signal.SIGINT, _on_signal)
    prev_term = signal.signal(signal.SIGTERM, _on_signal)
    try:
        yield flag
    finally:
        signal.signal(signal.SIGINT, prev_int)
        signal.signal(signal.SIGTERM, prev_term)


# ---------------------------------------------------------------------------
# serial path
# ---------------------------------------------------------------------------
class _SerialTimeout(Exception):
    """Raised by the SIGALRM handler when a serial attempt overruns."""


@contextmanager
def _serial_deadline(seconds: float | None):
    """Arm a SIGALRM-based per-attempt deadline (main thread only)."""
    if seconds is None or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise _SerialTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_serial(states: list[_TaskState], scale: WorkloadScale,
                policy: RetryPolicy, report: FailureReport,
                merge: Callable[["RunTask", "RunResult"], None],
                progress: Callable[[int, int], None] | None,
                interrupt: _InterruptFlag) -> None:
    from repro.harness.parallel import _execute_measured

    total = len(states)
    done_count = 0
    for state in states:
        while not state.done and not state.failed:
            if interrupt:
                report.executed = done_count
                return
            try:
                with _serial_deadline(policy.task_timeout):
                    faults.inject_task_fault(
                        state.key, state.index, state.next_attempt,
                        in_process=True,
                    )
                    result, sample = _execute_measured(state.task, scale)
            except faults.InjectedCrash as error:
                exhausted = _record_failure(
                    state, "crash", f"{type(error).__name__}: {error}",
                    policy, time.monotonic(),
                )
            except _SerialTimeout:
                exhausted = _record_failure(
                    state, "timeout",
                    f"exceeded {policy.task_timeout}s wall clock",
                    policy, time.monotonic(),
                )
            except Exception as error:
                exhausted = _record_failure(
                    state, "error", f"{type(error).__name__}: {error}",
                    policy, time.monotonic(),
                )
            else:
                _record_success(state)
                merge(state.task, result)
                # Serial runs execute in-process, so SIM_TALLY already
                # counted this task — record telemetry, never absorb.
                _record_telemetry(report.telemetry, "serial", state.key,
                                  sample)
                done_count += 1
                if progress is not None:
                    progress(done_count, total)
                continue
            if exhausted:
                if not policy.keep_going:
                    report.aborted = True
                    report.executed = done_count
                    return
                break
            time.sleep(state.attempts[-1].retry_delay or 0.0)
    report.executed = done_count


# ---------------------------------------------------------------------------
# supervised worker pool
# ---------------------------------------------------------------------------
def _worker_main(conn, scale: WorkloadScale) -> None:
    """Worker loop: one task per message, result sent back on the pipe.

    A ``None`` message (or pipe EOF) shuts the worker down. Task-level
    fault injection runs here, inside the real worker process, before
    the simulation starts — an injected crash takes the whole process
    down exactly like a genuine OOM kill would.

    An ``ok`` reply's payload is ``(result, sample)``: the RunResult
    plus the task's telemetry sample (wall-clock span and this process's
    SIM_TALLY delta), which the parent absorbs into its own tally.
    """
    from repro.harness.parallel import _execute_measured

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            conn.close()
            return
        key, index, attempt, task = message
        try:
            faults.inject_task_fault(key, index, attempt)
            result, sample = _execute_measured(task, scale)
        except Exception as error:  # noqa: BLE001 - isolate every failure
            try:
                conn.send(("error", key, attempt,
                           f"{type(error).__name__}: {error}"))
            except (BrokenPipeError, OSError):
                return
        else:
            try:
                conn.send(("ok", key, attempt, (result, sample)))
            except (BrokenPipeError, OSError):
                return


class _WorkerHandle:
    """One supervised worker process and its dedicated dispatch pipe."""

    __slots__ = ("conn", "proc", "state", "deadline")

    def __init__(self, mp_context, scale: WorkloadScale, name: str) -> None:
        parent_conn, child_conn = mp_context.Pipe()
        self.proc = mp_context.Process(
            target=_worker_main, args=(child_conn, scale),
            daemon=True, name=name,
        )
        self.proc.start()
        # The parent's copy of the child end must close so a dead worker
        # reliably surfaces as EOF on ``conn``.
        child_conn.close()
        self.conn = parent_conn
        self.state: _TaskState | None = None
        self.deadline: float | None = None

    def dispatch(self, state: _TaskState, timeout: float | None) -> None:
        self.state = state
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        self.conn.send((state.key, state.index, state.next_attempt,
                        state.task))

    def clear(self) -> None:
        self.state = None
        self.deadline = None

    def destroy(self, kill: bool = True) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if kill and self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5)


def _run_pool(states: list[_TaskState], scale: WorkloadScale, jobs: int,
              policy: RetryPolicy, report: FailureReport,
              merge: Callable[["RunTask", "RunResult"], None],
              progress: Callable[[int, int], None] | None,
              interrupt: _InterruptFlag) -> None:
    mp_context = get_context()
    total = len(states)
    by_key = {state.key: state for state in states}
    waiting = list(states)
    workers = [
        _WorkerHandle(mp_context, scale, f"repro-supervised-{i}")
        for i in range(min(jobs, total))
    ]
    done_count = 0
    aborting = False

    def fail(state: _TaskState, outcome: str, detail: str) -> None:
        nonlocal aborting
        if _record_failure(state, outcome, detail, policy, time.monotonic()):
            if not policy.keep_going:
                aborting = True
        else:
            waiting.append(state)

    def respawn(worker: _WorkerHandle) -> _WorkerHandle:
        replacement = _WorkerHandle(mp_context, scale, worker.proc.name)
        workers[workers.index(worker)] = replacement
        worker.destroy()
        return replacement

    try:
        while True:
            now = time.monotonic()
            stopping = aborting or bool(interrupt)
            if not stopping:
                for worker in list(workers):
                    if worker.state is not None:
                        continue
                    ready_index = next(
                        (i for i, s in enumerate(waiting)
                         if s.ready_at <= now),
                        None,
                    )
                    if ready_index is None:
                        break
                    state = waiting.pop(ready_index)
                    try:
                        worker.dispatch(state, policy.task_timeout)
                    except (BrokenPipeError, OSError):
                        # The idle worker died before dispatch reached
                        # it; the task never started, so no attempt is
                        # charged — respawn and put it back first.
                        worker.clear()
                        waiting.insert(0, state)
                        respawn(worker)
            running = [w for w in workers if w.state is not None]
            if stopping:
                # Fail-fast abort or SIGINT/SIGTERM: kill in-flight
                # workers; their tasks stay neither done nor failed and
                # land in the report's ``unfinished`` list.
                for worker in running:
                    worker.clear()
                    worker.destroy()
                break
            if not running and not waiting:
                break
            timeout = _poll_timeout(waiting, workers, now)
            if timeout is None:
                # Bounded tick even with no deadline pending, so an
                # interrupt latched mid-wait is honoured promptly.
                timeout = _MAX_TICK
            ready = connection_wait(
                [w.conn for w in workers], timeout=timeout,
            )
            now = time.monotonic()
            conn_to_worker = {w.conn: w for w in workers}
            for conn in ready:
                worker = conn_to_worker[conn]
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    _on_worker_death(worker, respawn, fail)
                    continue
                kind, key, attempt, payload = message
                state = by_key[key]
                worker.clear()
                if kind == "ok":
                    _record_success(state)
                    result, sample = payload
                    merge(state.task, result)
                    _record_telemetry(report.telemetry, worker.proc.name,
                                      state.key, sample)
                    # The worker counted this run in its own process's
                    # SIM_TALLY; fold the delta into the parent tally so
                    # a parallel suite's tally covers every process.
                    SIM_TALLY.absorb(sample["runs"], sample["events"],
                                     sample["cycles"],
                                     sample["sim_wall_seconds"])
                    done_count += 1
                    if progress is not None:
                        progress(done_count, total)
                else:
                    fail(state, "error", payload)
            for worker in list(workers):
                if (worker.state is not None and worker.deadline is not None
                        and now >= worker.deadline):
                    state = worker.state
                    # A result that landed exactly at the deadline still
                    # counts: prefer draining over killing.
                    if worker.conn.poll(0):
                        continue
                    worker.clear()
                    respawn(worker)
                    fail(
                        state, "timeout",
                        f"exceeded {policy.task_timeout}s wall clock; "
                        "worker killed",
                    )
    finally:
        for worker in workers:
            if worker.proc.is_alive() and worker.state is None:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            worker.destroy()
    report.aborted = aborting
    report.executed = done_count


def _on_worker_death(worker: _WorkerHandle,
                     respawn: Callable[[_WorkerHandle], _WorkerHandle],
                     fail: Callable[[_TaskState, str, str], None]) -> None:
    state = worker.state
    worker.clear()
    worker.proc.join(timeout=5)
    exitcode = worker.proc.exitcode
    respawn(worker)
    if state is None:
        return  # an idle worker died; nothing to charge
    injected = " (injected)" if exitcode == faults.INJECTED_CRASH_EXIT else ""
    fail(state, "crash", f"worker died, exit code {exitcode}{injected}")


def _poll_timeout(waiting: Sequence[_TaskState],
                  workers: Sequence[_WorkerHandle],
                  now: float) -> float | None:
    """Sleep until the next deadline or backoff expiry (None = block)."""
    horizons = [w.deadline for w in workers if w.deadline is not None
                and w.state is not None]
    idle = any(w.state is None for w in workers)
    if idle:
        horizons.extend(s.ready_at for s in waiting if s.ready_at > now)
    if not horizons:
        return None
    return min(max(min(horizons) - now, 0.0), _MAX_TICK)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def run_supervised(
    tasks: Sequence["RunTask"],
    scale: WorkloadScale,
    jobs: int,
    policy: RetryPolicy,
    merge: Callable[["RunTask", "RunResult"], None],
    progress: Callable[[int, int], None] | None = None,
) -> FailureReport:
    """Run every task under supervision; returns the failure report.

    ``merge(task, result)`` is called in the supervising process for
    every completed task (in completion order — merging must therefore
    be order-insensitive, which cache seeding is). The report is
    complete in both modes; callers decide whether failures are fatal
    (:class:`~repro.errors.ExecutionError`) based on the policy.
    """
    states = [
        _TaskState(index=i, task=task, key=task_key(task, scale.name))
        for i, task in enumerate(tasks)
    ]
    report = FailureReport(policy=policy, total=len(states))
    serial = jobs <= 1 or len(states) == 1
    report.telemetry = _new_telemetry("serial" if serial else "pool")
    if not states:
        return report
    with _interrupt_guard() as interrupt:
        if serial:
            _run_serial(states, scale, policy, report, merge, progress,
                        interrupt)
        else:
            _run_pool(states, scale, jobs, policy, report, merge, progress,
                      interrupt)
    report.interrupted = bool(interrupt)
    return _finalize_report(report, states, scale.name)


__all__ = [
    "Attempt",
    "ExecutionError",
    "FailureReport",
    "RetryPolicy",
    "TaskReport",
    "repro_command_for",
    "run_supervised",
    "task_key",
]
