"""On-disk result cache: completed simulations survive across processes.

Each :class:`repro.metrics.report.RunResult` is stored as one JSON file
under a cache root (default ``~/.cache/repro/``, overridable via the
``REPRO_CACHE_DIR`` environment variable). The file name is a SHA-256
over the *content-addressed* config digest plus the workload name, scale
preset, timeline-recording flag, and the package version — so a cache
entry can only ever be replayed for a bit-identical simulation setup, and
upgrading the simulator invalidates every stale entry automatically.

Storage integrity contract (DESIGN.md, "Failure-handling contract"):

* Entries are written atomically (tmp file + rename) so a killed run
  never leaves a truncated JSON behind.
* Every entry embeds a SHA-256 checksum over the canonical payload
  serialization, verified on ``get``. An entry that fails to parse,
  fails the checksum, or fails result reconstruction is **quarantined**
  — renamed to ``<key>.corrupt`` and counted in :attr:`corrupt`,
  separately from misses — so a broken entry is re-read and re-failed at
  most once instead of on every subsequent run.
* ``put`` never raises: a full disk, read-only cache root, or any other
  ``OSError`` degrades to a one-time warning and a :attr:`put_errors`
  count. A caching failure must never kill a suite whose simulation
  already succeeded.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path

import repro
from repro.config import SystemConfig, config_digest
from repro.harness import faults
from repro.metrics.report import RunResult
from repro.metrics.export import result_from_json_dict, result_to_json_dict

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Version tag of the on-disk envelope format.
ENVELOPE_VERSION = 1

#: Suffix given to quarantined (corrupt) entries.
CORRUPT_SUFFIX = ".corrupt"

_SOURCE_DIGEST: str | None = None


def source_digest() -> str:
    """SHA-256 over the simulator's own source files (computed once).

    Folding this into every cache key means editing any simulator source
    invalidates stale entries even without a version bump — a rerun after
    a local change can never silently replay pre-change results.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for source in sorted(root.rglob("*.py")):
            digest.update(str(source.relative_to(root)).encode())
            digest.update(source.read_bytes())
        _SOURCE_DIGEST = digest.hexdigest()
    return _SOURCE_DIGEST


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON serialization of one payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


class CacheIntegrityError(ValueError):
    """An entry's envelope or checksum failed verification."""


class ResultDiskCache:
    """A content-addressed store of finished :class:`RunResult` objects."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: entries quarantined after failing integrity verification.
        self.corrupt = 0
        #: writes that failed and were degraded to a warning.
        self.put_errors = 0
        self._put_warned = False

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def entry_key(workload: str, scale_name: str, record_timelines: bool,
                  config: SystemConfig) -> str:
        """Cache-file stem identifying one simulation's full setup."""
        material = "\n".join(
            (
                repro.__version__,
                source_digest(),
                workload,
                scale_name,
                "timelines" if record_timelines else "plain",
                config_digest(config),
            )
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, workload: str, scale_name: str,
                 record_timelines: bool, config: SystemConfig) -> Path:
        """Where one entry lives on disk."""
        key = self.entry_key(workload, scale_name, record_timelines, config)
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    @staticmethod
    def _verified_payload(data: object) -> dict:
        """The payload of one envelope, or raise CacheIntegrityError."""
        if not isinstance(data, dict) or "payload" not in data:
            raise CacheIntegrityError("entry is not a checksummed envelope")
        payload = data["payload"]
        if not isinstance(payload, dict):
            raise CacheIntegrityError("entry payload is not an object")
        expected = data.get("checksum")
        if expected != payload_checksum(payload):
            raise CacheIntegrityError("entry checksum mismatch")
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is never re-read again."""
        self.corrupt += 1
        try:
            os.replace(path, path.with_suffix(CORRUPT_SUFFIX))
        except OSError:
            # Unmovable (e.g. read-only dir): leave it; the next get
            # will re-fail, which is the pre-quarantine behaviour.
            pass

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(self, workload: str, scale_name: str, record_timelines: bool,
            config: SystemConfig) -> RunResult | None:
        """Stored result for this exact setup, or None on a miss.

        Corrupt entries (unparseable JSON, bad envelope/checksum, or a
        payload the current schema cannot reconstruct) are quarantined
        and counted in :attr:`corrupt`; plain absence counts a miss.
        """
        path = self.path_for(workload, scale_name, record_timelines, config)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = self._verified_payload(json.loads(text))
            result = result_from_json_dict(payload)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def put(self, workload: str, scale_name: str, record_timelines: bool,
            config: SystemConfig, result: RunResult) -> Path | None:
        """Persist one result; returns the entry path, or None on failure.

        Any ``OSError`` (ENOSPC, read-only root, permissions) degrades to
        a single :class:`RuntimeWarning` per cache instance and a
        :attr:`put_errors` count — the caller's result is already
        computed and must not be lost to a storage fault.
        """
        key = self.entry_key(workload, scale_name, record_timelines, config)
        path = self.root / f"{key}.json"
        try:
            faults.inject_cache_put_fault(key)
            self.root.mkdir(parents=True, exist_ok=True)
            payload = result_to_json_dict(result)
            envelope = {
                "v": ENVELOPE_VERSION,
                "checksum": payload_checksum(payload),
                "payload": payload,
            }
            # Per-process temp name: concurrent invocations writing the
            # same entry must not clobber each other's half-written file.
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            tmp.write_text(json.dumps(envelope))
            os.replace(tmp, path)
        except OSError as error:
            self.put_errors += 1
            if not self._put_warned:
                self._put_warned = True
                warnings.warn(
                    f"result cache write failed ({error}); continuing "
                    f"without persistence under {self.root}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None
        if faults.corrupt_cache_entry_planned(key):
            # Chaos hook: garble the stored bytes so a later get must
            # detect, quarantine, and re-simulate. Never raises past the
            # OSError guard above because the entry was just written.
            try:
                text = path.read_text()
                path.write_text(text[: max(1, len(text) // 2)])
            except OSError:
                pass
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters for reports: hits/misses/corrupt/put_errors/entries."""
        return {
            "root": str(self.root),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "put_errors": self.put_errors,
        }

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry (incl. quarantined); returns how many."""
        removed = 0
        if self.root.is_dir():
            for pattern in ("*.json", f"*{CORRUPT_SUFFIX}"):
                for entry in self.root.glob(pattern):
                    entry.unlink(missing_ok=True)
                    removed += 1
        return removed
