"""On-disk result cache: completed simulations survive across processes.

Each :class:`repro.metrics.report.RunResult` is stored as one JSON file
under a cache root (default ``~/.cache/repro/``, overridable via the
``REPRO_CACHE_DIR`` environment variable). The file name is a SHA-256
over the *content-addressed* config digest plus the workload name, scale
preset, timeline-recording flag, and the package version — so a cache
entry can only ever be replayed for a bit-identical simulation setup, and
upgrading the simulator invalidates every stale entry automatically.

Entries are written atomically (tmp file + rename) so a killed run never
leaves a truncated JSON behind, and unreadable entries are treated as
misses rather than errors.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import repro
from repro.config import SystemConfig, config_digest
from repro.metrics.report import RunResult
from repro.metrics.export import result_from_json_dict, result_to_json_dict

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_SOURCE_DIGEST: str | None = None


def source_digest() -> str:
    """SHA-256 over the simulator's own source files (computed once).

    Folding this into every cache key means editing any simulator source
    invalidates stale entries even without a version bump — a rerun after
    a local change can never silently replay pre-change results.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for source in sorted(root.rglob("*.py")):
            digest.update(str(source.relative_to(root)).encode())
            digest.update(source.read_bytes())
        _SOURCE_DIGEST = digest.hexdigest()
    return _SOURCE_DIGEST


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


class ResultDiskCache:
    """A content-addressed store of finished :class:`RunResult` objects."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def entry_key(workload: str, scale_name: str, record_timelines: bool,
                  config: SystemConfig) -> str:
        """Cache-file stem identifying one simulation's full setup."""
        material = "\n".join(
            (
                repro.__version__,
                source_digest(),
                workload,
                scale_name,
                "timelines" if record_timelines else "plain",
                config_digest(config),
            )
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, workload: str, scale_name: str,
                 record_timelines: bool, config: SystemConfig) -> Path:
        """Where one entry lives on disk."""
        key = self.entry_key(workload, scale_name, record_timelines, config)
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(self, workload: str, scale_name: str, record_timelines: bool,
            config: SystemConfig) -> RunResult | None:
        """Stored result for this exact setup, or None on a miss."""
        path = self.path_for(workload, scale_name, record_timelines, config)
        try:
            data = json.loads(path.read_text())
            result = result_from_json_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, workload: str, scale_name: str, record_timelines: bool,
            config: SystemConfig, result: RunResult) -> Path:
        """Persist one result; returns the entry path."""
        path = self.path_for(workload, scale_name, record_timelines, config)
        self.root.mkdir(parents=True, exist_ok=True)
        # Per-process temp name: concurrent invocations writing the same
        # entry must not clobber each other's half-written temp file.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(result_to_json_dict(result)))
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed
