"""Old-vs-new RunResult equivalence: the hot-path determinism contract.

The PR 2 hot-path overhaul (slotted counters, translation caches, bucket
engine, victim-scan rewrites — DESIGN.md, "Hot-path architecture") is
required to be a *pure* optimization: for every configuration, the
``RunResult`` it produces must be bit-identical to the pre-overhaul
simulator's. This module defines the canonical case matrix and JSON form
that pin that contract; the goldens themselves live in
``tests/golden/hotpath/`` and were recorded by running
``scripts/capture_equivalence_golden.py`` on the last pre-overhaul
revision. ``tests/test_equivalence_golden.py`` and the CI equivalence job
re-simulate every case and compare byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.config import CacheArch, SystemConfig
from repro.core.builder import run_workload_on
from repro.harness.runner import ExperimentContext
from repro.metrics.export import result_to_json_dict
from repro.workloads.spec import SCALES
from repro.workloads.suite import get_workload

#: Workloads chosen to exercise distinct behaviour profiles (streaming,
#: graph, stencil) while keeping the full matrix under ~15 s of simulation.
EQUIVALENCE_WORKLOADS = (
    "ML-GoogLeNet-cudnn-Lev2",
    "Rodinia-BFS",
    "Rodinia-Hotspot",
)


@dataclass(frozen=True)
class EquivalenceCase:
    """One pinned simulation: a name, its inputs, and what to record."""

    name: str
    workload: str
    config: SystemConfig
    record_timelines: bool


def equivalence_cases() -> list[EquivalenceCase]:
    """The golden case matrix.

    Every ``CacheArch`` organization is covered for every workload; one
    extra case adds dynamic links + timeline recording so the balancer,
    partition controller, and TimeSeries serialization paths are pinned
    too.
    """
    ctx = ExperimentContext(scale=SCALES["tiny"])
    cases = [
        EquivalenceCase(
            name=f"{workload}__{arch.value}",
            workload=workload,
            config=ctx.config_cache(arch),
            record_timelines=False,
        )
        for workload in EQUIVALENCE_WORKLOADS
        for arch in CacheArch
    ]
    cases.append(
        EquivalenceCase(
            name=f"{EQUIVALENCE_WORKLOADS[0]}__combined_timelines",
            workload=EQUIVALENCE_WORKLOADS[0],
            config=ctx.config_combined(),
            record_timelines=True,
        )
    )
    return cases


def canonical_result_json(case: EquivalenceCase) -> str:
    """Run one case and render its RunResult as canonical JSON."""
    result = run_workload_on(
        case.config,
        get_workload(case.workload),
        SCALES["tiny"],
        record_timelines=case.record_timelines,
    )
    return json.dumps(result_to_json_dict(result), sort_keys=True, indent=1)
