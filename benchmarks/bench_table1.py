"""Table 1: simulation parameters (rendered from the config layer)."""

from repro.harness import experiments as exp


def test_table1(ctx, benchmark):
    result = benchmark.pedantic(exp.table1, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert len(result.rows) >= 7
