"""Figure 2: fraction of workloads able to fill 1-8x larger GPUs."""

from repro.harness import experiments as exp


def test_figure2(ctx, benchmark):
    result = benchmark.pedantic(
        exp.figure2, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # The paper's qualitative claim: most workloads fill 2-8x larger GPUs.
    assert result.fill_percent[1] == 100.0
    assert result.fill_percent[8] >= 75.0
