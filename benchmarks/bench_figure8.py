"""Figure 8: the four cache organizations on the 32-workload study set."""

from repro.harness import experiments as exp


def test_figure8(ctx, benchmark):
    result = benchmark.pedantic(
        exp.figure8, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    static = result.mean_speedup("static_rc")
    shared = result.mean_speedup("shared_coherent")
    numa = result.mean_speedup("numa_aware")
    # Paper shape: GPU-side coherent caching beats static partitioning,
    # which beats (or ties) the memory-side baseline; the NUMA-aware
    # organization is at the top.
    assert shared > static
    assert numa > static
    assert numa > 1.0
