"""Micro-benchmarks of the simulator's hot components.

These measure the substrate itself (event engine throughput, cache fill
rate, full-system simulation rate) so performance regressions in the
simulator are caught alongside the figure benches.
"""

import random

from repro.config import CacheConfig, scaled_config
from repro.core.builder import run_workload_on
from repro.memory.cache import NumaClass, SetAssocCache
from repro.sim.engine import Engine
from repro.workloads.spec import TINY
from repro.workloads.synthetic import make_workload


def test_engine_event_throughput(benchmark):
    def run_events():
        engine = Engine()
        count = 20_000

        def tick():
            nonlocal count
            count -= 1
            if count > 0:
                engine.schedule(1, tick)

        engine.schedule(0, tick)
        engine.run()
        return engine.events_processed

    events = benchmark(run_events)
    assert events == 20_000


def test_cache_fill_throughput(benchmark):
    config = CacheConfig(capacity_bytes=2 * 1024 * 1024, ways=16)
    rng = random.Random(1)
    lines = [rng.randrange(1 << 20) for _ in range(20_000)]

    def fill_loop():
        cache = SetAssocCache("bench", config, local_ways=8, remote_ways=8)
        for i, line in enumerate(lines):
            cls = NumaClass.LOCAL if i & 1 else NumaClass.REMOTE
            if not cache.lookup(line):
                cache.fill(line, cls)
        return cache.valid_lines

    valid = benchmark(fill_loop)
    assert 0 < valid <= config.n_lines


def test_full_system_simulation_rate(benchmark):
    workload = make_workload(
        "bench-micro", pattern="stencil", n_ctas=64, slices_per_cta=4,
        ops_per_slice=8, iterations=1,
    )
    config = scaled_config(n_sockets=4, sms_per_socket=2)

    def simulate():
        return run_workload_on(config, workload, TINY).cycles

    cycles = benchmark(simulate)
    assert cycles > 0
