"""Figure 6: dynamic link adaptivity vs sample time and 2x bandwidth.

Sample times are scaled: our compressed traces map the paper's 5K-cycle
window to ~1K cycles (see EXPERIMENTS.md), so the sweep covers both sides
of the optimum like the paper's {1K, 5K, 10K, 50K} sweep does.
"""

from conftest import SAMPLE_TIMES

from repro.harness import experiments as exp


def test_figure6(ctx, benchmark):
    result = benchmark.pedantic(
        exp.figure6,
        args=(ctx,),
        kwargs={"sample_times": SAMPLE_TIMES},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # Doubling bandwidth is the upper bound on any link policy.
    best_dynamic = max(
        result.mean_speedup(f"s{s}") for s in SAMPLE_TIMES
    )
    assert result.mean_speedup("2x") > best_dynamic
    # Dynamic lane reversal helps the asymmetric-phase workloads (the
    # paper's winners reach +80%); workloads that saturate both link
    # directions see ~no gain, as the paper reports.
    best_per_workload = [
        max(cols[k] for k in cols if k.startswith("s"))
        for cols in result.per_workload.values()
    ]
    winners = [v for v in best_per_workload if v > 1.04]
    assert len(winners) >= 4
    assert max(best_per_workload) > 1.08
