"""Section 5.2 sensitivity: write-back vs write-through L2.

The paper measures write-back L2 outperforming write-through by ~9% on
average in the NUMA-aware design, because caching remote writes locally
cuts inter-GPU write bandwidth.
"""

from repro.harness import experiments as exp


def test_writeback_sensitivity(ctx, benchmark):
    result = benchmark.pedantic(
        exp.writeback_sensitivity, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Write-back wins on average.
    assert result.mean_speedup > 1.0
