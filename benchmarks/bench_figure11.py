"""Figure 11: 2/4/8-socket NUMA-aware GPUs vs hypothetical larger GPUs."""

from repro.harness import experiments as exp


def test_figure11(ctx, benchmark):
    result = benchmark.pedantic(
        exp.figure11, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Paper shape: speedup grows with socket count and efficiency stays
    # meaningful (paper: 1.5x/2.3x/3.2x at 89%/84%/76%). Our compressed
    # scale depresses the absolute factors (EXPERIMENTS.md) but the
    # monotonic scaling must hold.
    assert result.mean_speedup(4) > result.mean_speedup(2)
    assert result.mean_speedup(8) > result.mean_speedup(4)
    assert result.mean_speedup(8) > 1.0
    for k in (2, 4, 8):
        assert 0.0 < result.efficiency(k) <= 1.2
