"""Figure 9: software coherence invalidation overhead in GPU L2 caches."""

from repro.harness import experiments as exp


def test_figure9(ctx, benchmark):
    result = benchmark.pedantic(
        exp.figure9, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Paper: bulk SW invalidations cost ~10% on average. Our compressed
    # kernels amortize each flush over far less work, inflating the
    # absolute overhead (see EXPERIMENTS.md); the qualitative claim we
    # hold is that the overhead is bounded and non-negative on average.
    assert -0.02 <= result.mean_overhead <= 1.0
