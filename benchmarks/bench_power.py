"""Section 6: interconnect power at 10 pJ/b, baseline vs NUMA-aware.

The paper estimates ~30 W of communication power for the locality-
optimized 4-GPU baseline and ~14 W after the NUMA-aware optimizations
(geometric means over all 41 workloads), i.e. the optimizations roughly
halve communication power by eliminating inter-GPU traffic.
"""

from repro.harness import experiments as exp


def test_power(ctx, benchmark):
    result = benchmark.pedantic(
        exp.power_analysis, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    baseline = result.geomean("baseline_w")
    numa = result.geomean("numa_aware_w")
    # The NUMA-aware design moves fewer bytes across the switch.
    assert numa < baseline
