"""Table 2: per-workload time-weighted CTAs and memory footprints."""

from repro.harness import experiments as exp


def test_table2(ctx, benchmark):
    result = benchmark.pedantic(exp.table2, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result.render())
    assert len(result.rows) == 41
