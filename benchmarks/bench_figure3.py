"""Figure 3: SW-only locality optimization on a 4-socket NUMA GPU.

Regenerates the three bar groups: traditional policies, the
locality-optimized runtime, and the hypothetical 4x single GPU, for all
41 workloads.
"""

from repro.harness import experiments as exp
from repro.metrics.report import arithmetic_mean


def test_figure3(ctx, benchmark):
    result = benchmark.pedantic(
        exp.figure3, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    locality = [r.locality for r in result.rows]
    traditional = [r.traditional for r in result.rows]
    # Paper shape: locality-optimized beats traditional on average and the
    # traditional NUMA GPU cannot match a single GPU.
    assert arithmetic_mean(locality) > arithmetic_mean(traditional)
    assert arithmetic_mean(traditional) < 1.0
    # Grey-box workloads scale best with SW only.
    grey_eff = [r.sw_efficiency for r in result.rows if r.grey_box]
    rest_eff = [r.sw_efficiency for r in result.rows if not r.grey_box]
    assert arithmetic_mean(grey_eff) > arithmetic_mean(rest_eff)
