"""Shared fixtures for the benchmark suite.

All figure benches share one :class:`ExperimentContext` per scale so
baseline simulations (single GPU, locality-optimized 4-socket, the
hypothetical GPUs) run once and are reused across figures — exactly how
the paper's numbers share baselines.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — tiny (default) / small / medium. The scale used
  for EXPERIMENTS.md is small.
* ``REPRO_JOBS`` — when > 1, the shared context is prewarmed by fanning
  the full figure grid over that many worker processes before the first
  bench runs; results are bit-identical to the serial path (the benches
  then measure the same warm-cache reductions either way).
* ``REPRO_BENCH_JSON`` — where the machine-readable timing summary is
  written at session end (default: ``BENCH_hotpath.json`` in the repo
  root). The summary carries the session wall-clock, the simulations
  actually executed in-process, and their aggregate events/sec; an
  ``events_per_second_floor`` already present in the file is preserved so
  the CI perf smoke (``scripts/perf_smoke.py``) keeps its regression bar
  across re-measurements.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.harness import experiments as exp
from repro.harness.parallel import ParallelRunner, resolve_jobs
from repro.harness.runner import ExperimentContext
from repro.sim.instrumentation import SIM_TALLY
from repro.workloads.spec import SCALES

_CONTEXTS: dict[str, ExperimentContext] = {}

_SESSION_START = time.perf_counter()

#: True only when this session actually collected benchmark tests. A
#: plain tier-1 ``pytest`` run from the repo root traverses this
#: directory (loading this conftest) without collecting any bench; its
#: sessionfinish must NOT overwrite BENCH_hotpath.json with the unit-test
#: suite's incidental simulation tally.
_COLLECTED_BENCH_ITEMS = False


def pytest_collection_modifyitems(session, config, items) -> None:
    global _COLLECTED_BENCH_ITEMS
    here = Path(__file__).resolve().parent
    _COLLECTED_BENCH_ITEMS = any(
        here in Path(str(item.fspath)).resolve().parents for item in items
    )


def bench_scale_name() -> str:
    """Scale preset selected for this benchmark run."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


#: Sweep parameters shared between the bench files and the prewarm plan
#: below (the bench modules import these, so the grids cannot drift).
SAMPLE_TIMES = (500, 1000, 5000, 20000)
SWITCH_TIMES = (10, 100, 500)
SWITCH_SAMPLE_TIME = 1000

#: Exactly the driver invocations the bench files perform, so a parallel
#: prewarm captures the full grid the session will need.
_BENCH_DRIVERS = (
    lambda c: exp.figure3(c),
    lambda c: exp.figure5(c),
    lambda c: exp.figure6(c, sample_times=SAMPLE_TIMES),
    lambda c: exp.figure8(c),
    lambda c: exp.figure9(c),
    lambda c: exp.figure10(c),
    lambda c: exp.figure11(c),
    lambda c: exp.switch_time_sensitivity(
        c, switch_times=SWITCH_TIMES, sample_time=SWITCH_SAMPLE_TIME
    ),
    lambda c: exp.writeback_sensitivity(c),
    lambda c: exp.power_analysis(c),
)


def shared_context() -> ExperimentContext:
    """The process-wide experiment context for the selected scale."""
    name = bench_scale_name()
    if name not in _CONTEXTS:
        ctx = ExperimentContext(scale=SCALES[name])
        jobs = resolve_jobs(None)
        if jobs > 1:
            ParallelRunner(ctx, jobs=jobs).prewarm_experiments(_BENCH_DRIVERS)
        _CONTEXTS[name] = ctx
    return _CONTEXTS[name]


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return shared_context()


def _bench_json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON", "").strip()
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def pytest_sessionfinish(session, exitstatus) -> None:
    """Emit machine-readable benchmark timings (events/sec + wall-clock).

    ``simulations``/``events``/``events_per_second`` cover the runs this
    process executed (a parallel prewarm's worker-side simulations and
    disk-cache hits do not re-simulate here, so a warm session reports
    fewer in-process runs than a cold one — ``suite_wall_seconds`` is the
    cold tiny-suite wall-clock only for a serial, cache-less session).
    """
    if not _COLLECTED_BENCH_ITEMS or SIM_TALLY.runs == 0:
        return  # collection-only / non-bench invocation: nothing to record
    path = _bench_json_path()
    record: dict = {}
    if path.exists():
        try:
            record = json.loads(path.read_text())
        except ValueError:
            record = {}
    tally = SIM_TALLY.snapshot()
    record.update(
        {
            "scale": bench_scale_name(),
            "jobs": resolve_jobs(None),
            "suite_wall_seconds": round(time.perf_counter() - _SESSION_START, 3),
            "simulations": tally["runs"],
            "events": tally["events"],
            "sim_wall_seconds": tally["wall_seconds"],
            "events_per_second": tally["events_per_second"],
        }
    )
    path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
