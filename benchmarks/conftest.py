"""Shared fixtures for the benchmark suite.

All figure benches share one :class:`ExperimentContext` per scale so
baseline simulations (single GPU, locality-optimized 4-socket, the
hypothetical GPUs) run once and are reused across figures — exactly how
the paper's numbers share baselines.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — tiny (default) / small / medium. The scale used
  for EXPERIMENTS.md is small.
* ``REPRO_JOBS`` — when > 1, the shared context is prewarmed by fanning
  the full figure grid over that many worker processes before the first
  bench runs; results are bit-identical to the serial path (the benches
  then measure the same warm-cache reductions either way).
"""

from __future__ import annotations

import os

import pytest

from repro.harness import experiments as exp
from repro.harness.parallel import ParallelRunner, resolve_jobs
from repro.harness.runner import ExperimentContext
from repro.workloads.spec import SCALES

_CONTEXTS: dict[str, ExperimentContext] = {}


def bench_scale_name() -> str:
    """Scale preset selected for this benchmark run."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


#: Sweep parameters shared between the bench files and the prewarm plan
#: below (the bench modules import these, so the grids cannot drift).
SAMPLE_TIMES = (500, 1000, 5000, 20000)
SWITCH_TIMES = (10, 100, 500)
SWITCH_SAMPLE_TIME = 1000

#: Exactly the driver invocations the bench files perform, so a parallel
#: prewarm captures the full grid the session will need.
_BENCH_DRIVERS = (
    lambda c: exp.figure3(c),
    lambda c: exp.figure5(c),
    lambda c: exp.figure6(c, sample_times=SAMPLE_TIMES),
    lambda c: exp.figure8(c),
    lambda c: exp.figure9(c),
    lambda c: exp.figure10(c),
    lambda c: exp.figure11(c),
    lambda c: exp.switch_time_sensitivity(
        c, switch_times=SWITCH_TIMES, sample_time=SWITCH_SAMPLE_TIME
    ),
    lambda c: exp.writeback_sensitivity(c),
    lambda c: exp.power_analysis(c),
)


def shared_context() -> ExperimentContext:
    """The process-wide experiment context for the selected scale."""
    name = bench_scale_name()
    if name not in _CONTEXTS:
        ctx = ExperimentContext(scale=SCALES[name])
        jobs = resolve_jobs(None)
        if jobs > 1:
            ParallelRunner(ctx, jobs=jobs).prewarm_experiments(_BENCH_DRIVERS)
        _CONTEXTS[name] = ctx
    return _CONTEXTS[name]


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return shared_context()
