"""Shared fixtures for the benchmark suite.

All figure benches share one :class:`ExperimentContext` per scale so
baseline simulations (single GPU, locality-optimized 4-socket, the
hypothetical GPUs) run once and are reused across figures — exactly how
the paper's numbers share baselines.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — tiny (default) / small / medium. The scale used
  for EXPERIMENTS.md is small.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import ExperimentContext
from repro.workloads.spec import SCALES

_CONTEXTS: dict[str, ExperimentContext] = {}


def bench_scale_name() -> str:
    """Scale preset selected for this benchmark run."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


def shared_context() -> ExperimentContext:
    """The process-wide experiment context for the selected scale."""
    name = bench_scale_name()
    if name not in _CONTEXTS:
        _CONTEXTS[name] = ExperimentContext(scale=SCALES[name])
    return _CONTEXTS[name]


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return shared_context()
