"""Figure 10: combined dynamic links + NUMA-aware caches, 4 sockets."""

from repro.harness import experiments as exp


def test_figure10(ctx, benchmark):
    result = benchmark.pedantic(
        exp.figure10, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    baseline = result.mean("baseline")
    combined = result.mean("combined")
    hypothetical = result.mean("hypothetical")
    # Paper shape: the combined design beats the SW-only baseline for the
    # interconnect-bound workloads and sits below the unbuildable 4x GPU.
    gains = [
        cols["combined"] / cols["baseline"]
        for cols in result.per_workload.values()
    ]
    winners = [g for g in gains if g > 1.1]
    assert len(winners) >= 5
    assert combined < hypothetical
