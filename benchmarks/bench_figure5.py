"""Figure 5: asymmetric link utilization profile for HPC-HPGMG-UVM."""

from repro.harness import experiments as exp
from repro.metrics.report import arithmetic_mean


def test_figure5(ctx, benchmark):
    result = benchmark.pedantic(
        exp.figure5, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # The figure's point: per-GPU ingress and egress utilization diverge.
    assert result.profiles
    assert result.kernel_launch_times
    mean_gap = arithmetic_mean(list(result.asymmetry.values()))
    assert mean_gap > 0.05
