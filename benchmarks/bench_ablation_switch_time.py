"""Section 4.1 sensitivity: lane turn time (10 / 100 / 500 cycles).

The paper reports that even a 500-cycle turn loses under 2% versus the
100-cycle assumption, and a 10-cycle turn gains little — the policy is
insensitive to turn cost at sane sample times.
"""

from conftest import SWITCH_SAMPLE_TIME, SWITCH_TIMES

from repro.harness import experiments as exp


def test_switch_time_sensitivity(ctx, benchmark):
    result = benchmark.pedantic(
        exp.switch_time_sensitivity,
        args=(ctx,),
        kwargs={"switch_times": SWITCH_TIMES, "sample_time": SWITCH_SAMPLE_TIME},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    fastest = result.mean_speedup[10]
    slowest = result.mean_speedup[500]
    # Turn-cost insensitivity: the spread between a 10-cycle and a
    # 500-cycle lane turn stays small.
    assert abs(fastest - slowest) < 0.15
